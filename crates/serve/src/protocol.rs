//! The wire protocol: two self-describing frame formats over one
//! stream, distinguished per frame by their first byte.
//!
//! **JSON frames** are newline-delimited objects (one request or
//! response per line, UTF-8, `\n`-terminated). JSON through the
//! workspace's serde shims keeps the protocol dependency-free and
//! human-debuggable (`nc` into the server and type a request), and the
//! shim's shortest-round-trip float formatting means a pre-encoded
//! `f32` observation row crosses the wire bit-exactly — the parity
//! guarantee survives serialization. Representations are the
//! serde-default externally-tagged enum forms, e.g.
//! `{"Score":{"id":1,"snapshot":{…}}}` and
//! `{"Action":{"id":1,"action":3,"shard":0}}`.
//!
//! **Binary frames** are length-prefixed little-endian records:
//! `[0xB1][version=1][payload_len: u32 LE][payload]`, payload =
//! `[variant tag: u8][fields…]`. All integers are fixed-width LE;
//! floats are IEEE-754 `to_le_bytes`; strings and vectors carry a
//! `u32` count. `ScoreRaw` observation/mask rows travel as one
//! contiguous `f32` byte slice — no text formatting, no per-float
//! parse, and (with reused buffers) no allocation at steady state.
//! Float exactness is structural here.
//!
//! **Negotiation** is a first-byte sniff, per frame: `0xB1` cannot
//! start a JSON line (it is a UTF-8 continuation byte), so
//! [`read_frame_any`] dispatches on it with no handshake. A connection
//! may mix formats; the server answers each request in the format it
//! arrived in (latched per connection), so JSON clients and `nc`
//! sessions keep working against a binary-capable server unchanged.
//!
//! **Error taxonomy** (drives the client's retry-vs-report decision,
//! both formats): a frame cut short by a dying peer — a JSON line
//! missing its `\n`, a binary header or payload shorter than declared
//! — is a *transport* error (`UnexpectedEof`, safe to retry on a fresh
//! connection). A frame that arrived whole but decoded wrong — garbage
//! JSON, an unknown tag, a payload that contradicts its own length —
//! is a *protocol* error (`InvalidData`, never retried).
//!
//! Correlation ids must stay below 2^53: JSON interoperability (RFC
//! 8259 §6) only guarantees integer exactness within IEEE-double range,
//! and ids above it may come back changed. [`crate::ServeClient`]
//! allocates ids sequentially from 0, far below the limit.

use std::io::{BufRead, Write};

use rlsched_obs::{HistogramSnapshot, MetricSnapshot, MetricValue, RegistrySnapshot};
use rlscheduler::{QueueSnapshot, SnapshotJob};
use serde::{Deserialize, Serialize};

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Score a queue snapshot: the server encodes it with the agent's
    /// observation encoder and answers with the chosen queue position.
    Score {
        /// Client-chosen correlation id, echoed in the response. Also
        /// the shard-routing key: requests with the same id always land
        /// on the same shard (deterministic routing).
        id: u64,
        /// The decision point.
        snapshot: QueueSnapshot,
    },
    /// Score a pre-encoded observation row (the client ran the encoder).
    ScoreRaw {
        /// Correlation id / routing key.
        id: u64,
        /// `[obs_dim]` observation row.
        obs: Vec<f32>,
        /// `[n_actions]` additive mask row.
        mask: Vec<f32>,
        /// Full waiting-queue length (action-clamp bound).
        queue_len: u64,
    },
    /// Fetch serving statistics.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Scrape the server's full metrics registry (every counter, gauge,
    /// and histogram the tier records — see `rlsched-obs`).
    Metrics {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// The correlation id of any request variant.
    pub fn id(&self) -> u64 {
        match self {
            Request::Score { id, .. }
            | Request::ScoreRaw { id, .. }
            | Request::Stats { id }
            | Request::Metrics { id } => *id,
        }
    }
}

/// Which arm produced a scoring decision.
///
/// `Model` answers are bit-identical to in-process `Agent::as_policy`
/// scoring (the parity invariant); `Fallback` answers come from the
/// deterministic heuristic arm (shard down, inbox full, or in-queue
/// deadline expired) and are bit-identical to
/// `rlsched_sched::PriorityScheduler` with the server's configured kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedBy {
    /// Scored by the policy network on a shard.
    Model,
    /// Answered by the deterministic heuristic fallback.
    Fallback,
}

/// Lifecycle state of one shard worker, as reported in [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardState {
    /// Scoring normally.
    Healthy,
    /// Panicked recently; backing off before the next respawn attempt.
    Restarting,
    /// Restart budget exhausted; answering everything via fallback until
    /// a validated weight swap revives it.
    Failed,
}

/// Health snapshot of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Current lifecycle state.
    pub state: ShardState,
    /// Engine respawns after panics (lifetime total).
    pub restarts: u64,
    /// Worker panics caught by the supervisor (lifetime total).
    pub panics: u64,
}

/// Aggregated serving statistics (see [`crate::ServerHandle::stats`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Scoring requests answered by the model.
    pub served: u64,
    /// Scoring requests answered by the heuristic fallback arm.
    pub fallbacks: u64,
    /// Requests shed by backpressure (no fallback configured).
    pub shed: u64,
    /// Requests whose in-queue deadline expired (answered via fallback).
    pub deadlines: u64,
    /// Batched forwards dispatched.
    pub batches: u64,
    /// Largest coalesced batch so far.
    pub max_batch: u64,
    /// Weight hot-swaps committed (validated proposals + forced swaps).
    pub swaps: u64,
    /// Checkpoint proposals rejected or reverted by rollback.
    pub rollbacks: u64,
    /// Shard engine respawns after caught panics.
    pub restarts: u64,
    /// Accept-loop failures survived with backoff.
    pub accept_failures: u64,
    /// Median request latency (enqueue → scored), microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Maximum request latency, microseconds.
    pub max_us: f64,
    /// Per-shard health, indexed by shard id.
    pub shards: Vec<ShardHealth>,
}

impl ServeStats {
    /// Mean rows per coalesced batch (0 when nothing was served).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The scheduling decision for a scoring request.
    Action {
        /// Echoed correlation id.
        id: u64,
        /// Chosen queue position (`< queue_len`).
        action: u64,
        /// The shard that scored it (observability; deterministic per id).
        shard: u64,
        /// Which arm answered: the model or the heuristic fallback.
        served_by: ServedBy,
    },
    /// The request was shed: the shard's queue was full. The client
    /// should fall back to a local heuristic or retry after backoff.
    Shed {
        /// Echoed correlation id.
        id: u64,
    },
    /// Serving statistics.
    Stats {
        /// Echoed correlation id.
        id: u64,
        /// The aggregate counters.
        stats: ServeStats,
    },
    /// The full metrics registry at scrape time.
    Metrics {
        /// Echoed correlation id.
        id: u64,
        /// A consistent read of every registered metric.
        metrics: RegistrySnapshot,
    },
    /// The request was malformed (bad widths, empty queue, …).
    Error {
        /// Echoed correlation id (0 when the frame didn't parse).
        id: u64,
        /// What was wrong.
        message: String,
    },
}

impl Response {
    /// The correlation id of any response variant.
    pub fn id(&self) -> u64 {
        match self {
            Response::Action { id, .. }
            | Response::Shed { id }
            | Response::Stats { id, .. }
            | Response::Metrics { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

/// Serialize one frame and write it with its terminating newline.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, frame: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_string(frame).map_err(std::io::Error::from)?;
    line.push('\n');
    w.write_all(line.as_bytes())
}

/// Read one newline-terminated frame. `Ok(None)` on clean EOF.
///
/// A non-empty line *without* its terminating newline means the stream
/// died mid-frame (peer crashed mid-write): that is a transport failure
/// (`UnexpectedEof`), not a protocol violation — the distinction drives
/// the client's retry-vs-report decision.
pub fn read_frame<T: Deserialize, R: BufRead>(r: &mut R) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        if read_frame_line(r, &mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let parsed = serde_json::from_str(line.trim()).map_err(std::io::Error::from)?;
        return Ok(Some(parsed));
    }
}

/// Read one raw line into `line`, reusing its allocation. Returns the
/// byte count (0 on clean EOF).
///
/// Reads *bytes* and validates UTF-8 only on newline-complete lines:
/// a stream that dies inside a multi-byte character is a torn frame
/// (`UnexpectedEof`, retryable), not a protocol violation —
/// `BufRead::read_line` checks UTF-8 first and would misreport that
/// tear as `InvalidData`, defeating the client's retry.
fn read_frame_line<R: BufRead>(r: &mut R, line: &mut String) -> std::io::Result<usize> {
    let mut buf = std::mem::take(line).into_bytes();
    buf.clear();
    let n = r.read_until(b'\n', &mut buf)?;
    if n > 0 && buf.last() != Some(&b'\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "frame truncated mid-line",
        ));
    }
    *line = String::from_utf8(buf).map_err(|_| bad("frame is not valid UTF-8"))?;
    Ok(n)
}

// ---------------------------------------------------------------------------
// Binary wire format (see the module docs for the layout).
// ---------------------------------------------------------------------------

/// Which frame format a peer is speaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireProtocol {
    /// Newline-delimited JSON objects.
    Json,
    /// Length-prefixed little-endian binary frames.
    Binary,
}

impl WireProtocol {
    /// Short display tag (`json` / `binary`).
    pub fn name(self) -> &'static str {
        match self {
            WireProtocol::Json => "json",
            WireProtocol::Binary => "binary",
        }
    }
}

/// First byte of every binary frame. A UTF-8 continuation byte, so it
/// can never begin a JSON line — the whole negotiation.
pub const BINARY_MAGIC: u8 = 0xB1;
/// Binary framing version; bumped on layout changes.
pub const BINARY_VERSION: u8 = 1;
/// Frame header: magic, version, payload length.
const HEADER_LEN: usize = 6;
/// Upper bound on a declared payload length — a corrupt length prefix
/// must not become a giant allocation.
const MAX_FRAME_LEN: usize = 64 << 20;

const TAG_REQ_SCORE: u8 = 1;
const TAG_REQ_SCORE_RAW: u8 = 2;
const TAG_REQ_STATS: u8 = 3;
const TAG_REQ_METRICS: u8 = 4;

const TAG_RESP_ACTION: u8 = 1;
const TAG_RESP_SHED: u8 = 2;
const TAG_RESP_STATS: u8 = 3;
const TAG_RESP_ERROR: u8 = 4;
const TAG_RESP_METRICS: u8 = 5;

const METRIC_KIND_COUNTER: u8 = 0;
const METRIC_KIND_GAUGE: u8 = 1;
const METRIC_KIND_HISTOGRAM: u8 = 2;

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// `u32` count + the rows as one contiguous little-endian byte slice.
/// On little-endian targets the slice is appended with a single
/// `memcpy` of the `f32` storage — the zero-copy write path.
fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_u32(out, xs.len() as u32);
    #[cfg(target_endian = "little")]
    // SAFETY: `f32` has no padding and alignment 4 ≥ 1; viewing the
    // slice's storage as bytes is always valid, and LE storage order
    // is exactly the wire order.
    out.extend_from_slice(unsafe {
        std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), std::mem::size_of_val(xs))
    });
    #[cfg(not(target_endian = "little"))]
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Little-endian cursor over one binary payload. Running out of bytes
/// is `InvalidData`: the full frame already arrived (the length prefix
/// said so), so a short payload is malformed content, not a torn read.
struct Rd<'a> {
    buf: &'a [u8],
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("binary payload shorter than its fields"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> std::io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> std::io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> std::io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> std::io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad("bool field is not 0/1")),
        }
    }

    /// Count-prefixed contiguous `f32` rows, decoded into a reused
    /// vector. On little-endian targets this is one `memcpy` into the
    /// vector's (warm) storage — the zero-copy read path.
    fn f32s_into(&mut self, out: &mut Vec<f32>) -> std::io::Result<()> {
        let n = self.u32()? as usize;
        let nb = n.checked_mul(4).ok_or_else(|| bad("f32 count overflow"))?;
        let bytes = self.take(nb)?;
        out.clear();
        out.reserve(n);
        #[cfg(target_endian = "little")]
        // SAFETY: `reserve(n)` guarantees capacity; the source holds
        // exactly `n * 4` bytes, copied into the vector's storage
        // (u8 alignment 1 into f32 storage via raw pointers is fine,
        // and every bit pattern is a valid f32).
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), nb);
            out.set_len(n);
        }
        #[cfg(not(target_endian = "little"))]
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        Ok(())
    }

    fn str_into(&mut self, out: &mut String) -> std::io::Result<()> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        let s = std::str::from_utf8(bytes).map_err(|_| bad("string field is not UTF-8"))?;
        out.clear();
        out.push_str(s);
        Ok(())
    }

    fn finish(&self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad("binary payload has trailing bytes"))
        }
    }
}

/// A frame type that exists in both wire representations.
///
/// The `*_into` decode reuses the heap buffers of the value it decodes
/// into whenever the incoming variant matches — the mechanism behind
/// the 0-allocation steady state pinned in `alloc_regression`.
pub trait WireFrame: Serialize + Deserialize {
    /// Append this frame's binary payload (tag byte + fields) to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decode a binary payload over `into`, reusing its buffers.
    fn decode_payload_into(bytes: &[u8], into: &mut Self) -> std::io::Result<()>;

    /// A cheap throwaway value for owned decodes.
    fn scratch() -> Self;
}

/// Decode one binary payload into an owned frame.
pub fn decode_payload<T: WireFrame>(bytes: &[u8]) -> std::io::Result<T> {
    let mut v = T::scratch();
    T::decode_payload_into(bytes, &mut v)?;
    Ok(v)
}

/// Encode a complete binary frame (header + payload) into `out`,
/// clearing it first. Allocation-free once `out`'s capacity is warm.
pub fn encode_binary_frame<T: WireFrame>(frame: &T, out: &mut Vec<u8>) {
    out.clear();
    out.push(BINARY_MAGIC);
    out.push(BINARY_VERSION);
    out.extend_from_slice(&[0u8; 4]);
    frame.encode_payload(out);
    let len = (out.len() - HEADER_LEN) as u32;
    out[2..HEADER_LEN].copy_from_slice(&len.to_le_bytes());
}

/// Encode into `scratch` and write the frame. The reused `scratch`
/// keeps steady-state writes allocation-free.
pub fn write_binary_frame<T: WireFrame, W: Write>(
    w: &mut W,
    frame: &T,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    encode_binary_frame(frame, scratch);
    w.write_all(scratch)
}

/// Serialize one JSON frame (object + `\n`) into a reusable byte
/// buffer, clearing it first.
pub fn encode_json_frame<T: Serialize>(frame: &T, out: &mut Vec<u8>) -> std::io::Result<()> {
    out.clear();
    let line = serde_json::to_string(frame).map_err(std::io::Error::from)?;
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    Ok(())
}

/// Directly encode a binary `ScoreRaw` request frame from borrowed
/// rows — the client's zero-copy send path (no `Request` value, no
/// `Vec<f32>` clones; allocation-free once `out` is warm).
pub fn encode_score_raw_frame(
    out: &mut Vec<u8>,
    id: u64,
    obs: &[f32],
    mask: &[f32],
    queue_len: u64,
) {
    out.clear();
    out.push(BINARY_MAGIC);
    out.push(BINARY_VERSION);
    out.extend_from_slice(&[0u8; 4]);
    put_score_raw(out, id, obs, mask, queue_len);
    let len = (out.len() - HEADER_LEN) as u32;
    out[2..HEADER_LEN].copy_from_slice(&len.to_le_bytes());
}

fn put_score_raw(out: &mut Vec<u8>, id: u64, obs: &[f32], mask: &[f32], queue_len: u64) {
    out.push(TAG_REQ_SCORE_RAW);
    put_u64(out, id);
    put_u64(out, queue_len);
    put_f32s(out, obs);
    put_f32s(out, mask);
}

fn put_registry_snapshot(out: &mut Vec<u8>, snap: &RegistrySnapshot) {
    put_u32(out, snap.metrics.len() as u32);
    for m in &snap.metrics {
        put_str(out, &m.name);
        put_u32(out, m.labels.len() as u32);
        for (k, v) in &m.labels {
            put_str(out, k);
            put_str(out, v);
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push(METRIC_KIND_COUNTER);
                put_u64(out, *v);
            }
            MetricValue::Gauge(v) => {
                out.push(METRIC_KIND_GAUGE);
                put_f64(out, *v);
            }
            MetricValue::Histogram(h) => {
                out.push(METRIC_KIND_HISTOGRAM);
                put_u64(out, h.count);
                put_u64(out, h.max_ns);
                put_u32(out, h.buckets.len() as u32);
                for &(i, c) in &h.buckets {
                    put_u32(out, i);
                    put_u64(out, c);
                }
            }
        }
    }
}

fn read_registry_snapshot(rd: &mut Rd) -> std::io::Result<RegistrySnapshot> {
    let n = rd.u32()? as usize;
    // A metric is at least 17 bytes (empty name, no labels, counter):
    // reject counts the payload cannot hold before reserving.
    if n > rd.buf.len() / 17 {
        return Err(bad("metric count exceeds payload"));
    }
    let mut metrics = Vec::with_capacity(n);
    for _ in 0..n {
        let mut name = String::new();
        rd.str_into(&mut name)?;
        let n_labels = rd.u32()? as usize;
        // A label is at least two empty length-prefixed strings.
        if n_labels > rd.buf.len() / 8 {
            return Err(bad("label count exceeds payload"));
        }
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            let mut k = String::new();
            let mut v = String::new();
            rd.str_into(&mut k)?;
            rd.str_into(&mut v)?;
            labels.push((k, v));
        }
        let value = match rd.u8()? {
            METRIC_KIND_COUNTER => MetricValue::Counter(rd.u64()?),
            METRIC_KIND_GAUGE => MetricValue::Gauge(rd.f64()?),
            METRIC_KIND_HISTOGRAM => {
                let count = rd.u64()?;
                let max_ns = rd.u64()?;
                let n_buckets = rd.u32()? as usize;
                // 12 bytes per (index, count) pair.
                if n_buckets > rd.buf.len() / 12 {
                    return Err(bad("bucket count exceeds payload"));
                }
                let mut buckets = Vec::with_capacity(n_buckets);
                for _ in 0..n_buckets {
                    let i = rd.u32()?;
                    let c = rd.u64()?;
                    buckets.push((i, c));
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count,
                    max_ns,
                    buckets,
                })
            }
            _ => return Err(bad("unknown metric kind tag")),
        };
        metrics.push(MetricSnapshot {
            name,
            labels,
            value,
        });
    }
    Ok(RegistrySnapshot { metrics })
}

impl WireFrame for Request {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Request::Score { id, snapshot } => {
                out.push(TAG_REQ_SCORE);
                put_u64(out, *id);
                put_u32(out, snapshot.free_procs);
                put_u32(out, snapshot.total_procs);
                put_u32(out, snapshot.queue_len);
                put_u32(out, snapshot.jobs.len() as u32);
                for j in &snapshot.jobs {
                    put_f64(out, j.wait);
                    put_f64(out, j.time_bound);
                    put_u32(out, j.procs);
                    out.push(j.can_run_now as u8);
                }
            }
            Request::ScoreRaw {
                id,
                obs,
                mask,
                queue_len,
            } => put_score_raw(out, *id, obs, mask, *queue_len),
            Request::Stats { id } => {
                out.push(TAG_REQ_STATS);
                put_u64(out, *id);
            }
            Request::Metrics { id } => {
                out.push(TAG_REQ_METRICS);
                put_u64(out, *id);
            }
        }
    }

    fn decode_payload_into(bytes: &[u8], into: &mut Self) -> std::io::Result<()> {
        let mut rd = Rd { buf: bytes };
        match rd.u8()? {
            TAG_REQ_SCORE => {
                let id = rd.u64()?;
                let free_procs = rd.u32()?;
                let total_procs = rd.u32()?;
                let queue_len = rd.u32()?;
                let n = rd.u32()? as usize;
                // 21 bytes per job (two f64, one u32, one bool): reject
                // counts the payload cannot hold before reserving.
                if n > rd.buf.len() / 21 {
                    return Err(bad("snapshot job count exceeds payload"));
                }
                let mut jobs = match std::mem::replace(into, Request::Stats { id: 0 }) {
                    Request::Score { snapshot, .. } => snapshot.jobs,
                    _ => Vec::new(),
                };
                jobs.clear();
                jobs.reserve(n);
                for _ in 0..n {
                    jobs.push(SnapshotJob {
                        wait: rd.f64()?,
                        time_bound: rd.f64()?,
                        procs: rd.u32()?,
                        can_run_now: rd.bool()?,
                    });
                }
                rd.finish()?;
                *into = Request::Score {
                    id,
                    snapshot: QueueSnapshot {
                        free_procs,
                        total_procs,
                        queue_len,
                        jobs,
                    },
                };
                Ok(())
            }
            TAG_REQ_SCORE_RAW => {
                let id = rd.u64()?;
                let queue_len = rd.u64()?;
                let (mut obs, mut mask) = match std::mem::replace(into, Request::Stats { id: 0 }) {
                    Request::ScoreRaw { obs, mask, .. } => (obs, mask),
                    _ => (Vec::new(), Vec::new()),
                };
                rd.f32s_into(&mut obs)?;
                rd.f32s_into(&mut mask)?;
                rd.finish()?;
                *into = Request::ScoreRaw {
                    id,
                    obs,
                    mask,
                    queue_len,
                };
                Ok(())
            }
            TAG_REQ_STATS => {
                let id = rd.u64()?;
                rd.finish()?;
                *into = Request::Stats { id };
                Ok(())
            }
            TAG_REQ_METRICS => {
                let id = rd.u64()?;
                rd.finish()?;
                *into = Request::Metrics { id };
                Ok(())
            }
            _ => Err(bad("unknown request tag")),
        }
    }

    fn scratch() -> Self {
        Request::Stats { id: 0 }
    }
}

impl WireFrame for Response {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Response::Action {
                id,
                action,
                shard,
                served_by,
            } => {
                out.push(TAG_RESP_ACTION);
                put_u64(out, *id);
                put_u64(out, *action);
                put_u64(out, *shard);
                out.push(match served_by {
                    ServedBy::Model => 0,
                    ServedBy::Fallback => 1,
                });
            }
            Response::Shed { id } => {
                out.push(TAG_RESP_SHED);
                put_u64(out, *id);
            }
            Response::Stats { id, stats } => {
                out.push(TAG_RESP_STATS);
                put_u64(out, *id);
                for c in [
                    stats.served,
                    stats.fallbacks,
                    stats.shed,
                    stats.deadlines,
                    stats.batches,
                    stats.max_batch,
                    stats.swaps,
                    stats.rollbacks,
                    stats.restarts,
                    stats.accept_failures,
                ] {
                    put_u64(out, c);
                }
                put_f64(out, stats.p50_us);
                put_f64(out, stats.p99_us);
                put_f64(out, stats.max_us);
                put_u32(out, stats.shards.len() as u32);
                for s in &stats.shards {
                    out.push(match s.state {
                        ShardState::Healthy => 0,
                        ShardState::Restarting => 1,
                        ShardState::Failed => 2,
                    });
                    put_u64(out, s.restarts);
                    put_u64(out, s.panics);
                }
            }
            Response::Metrics { id, metrics } => {
                out.push(TAG_RESP_METRICS);
                put_u64(out, *id);
                put_registry_snapshot(out, metrics);
            }
            Response::Error { id, message } => {
                out.push(TAG_RESP_ERROR);
                put_u64(out, *id);
                put_str(out, message);
            }
        }
    }

    fn decode_payload_into(bytes: &[u8], into: &mut Self) -> std::io::Result<()> {
        let mut rd = Rd { buf: bytes };
        match rd.u8()? {
            TAG_RESP_ACTION => {
                let id = rd.u64()?;
                let action = rd.u64()?;
                let shard = rd.u64()?;
                let served_by = match rd.u8()? {
                    0 => ServedBy::Model,
                    1 => ServedBy::Fallback,
                    _ => return Err(bad("unknown served_by tag")),
                };
                rd.finish()?;
                *into = Response::Action {
                    id,
                    action,
                    shard,
                    served_by,
                };
                Ok(())
            }
            TAG_RESP_SHED => {
                let id = rd.u64()?;
                rd.finish()?;
                *into = Response::Shed { id };
                Ok(())
            }
            TAG_RESP_STATS => {
                let id = rd.u64()?;
                let mut counters = [0u64; 10];
                for c in &mut counters {
                    *c = rd.u64()?;
                }
                let p50_us = rd.f64()?;
                let p99_us = rd.f64()?;
                let max_us = rd.f64()?;
                let n = rd.u32()? as usize;
                // 17 bytes per shard record.
                if n > rd.buf.len() / 17 {
                    return Err(bad("shard count exceeds payload"));
                }
                let mut shards = match std::mem::replace(into, Response::Shed { id: 0 }) {
                    Response::Stats { stats, .. } => stats.shards,
                    _ => Vec::new(),
                };
                shards.clear();
                shards.reserve(n);
                for _ in 0..n {
                    shards.push(ShardHealth {
                        state: match rd.u8()? {
                            0 => ShardState::Healthy,
                            1 => ShardState::Restarting,
                            2 => ShardState::Failed,
                            _ => return Err(bad("unknown shard state tag")),
                        },
                        restarts: rd.u64()?,
                        panics: rd.u64()?,
                    });
                }
                rd.finish()?;
                *into = Response::Stats {
                    id,
                    stats: ServeStats {
                        served: counters[0],
                        fallbacks: counters[1],
                        shed: counters[2],
                        deadlines: counters[3],
                        batches: counters[4],
                        max_batch: counters[5],
                        swaps: counters[6],
                        rollbacks: counters[7],
                        restarts: counters[8],
                        accept_failures: counters[9],
                        p50_us,
                        p99_us,
                        max_us,
                        shards,
                    },
                };
                Ok(())
            }
            TAG_RESP_METRICS => {
                let id = rd.u64()?;
                // Scrapes are rare (no steady-state path decodes them),
                // so this decode builds fresh vectors instead of
                // threading buffer reuse through the nested metrics.
                let metrics = read_registry_snapshot(&mut rd)?;
                rd.finish()?;
                *into = Response::Metrics { id, metrics };
                Ok(())
            }
            TAG_RESP_ERROR => {
                let id = rd.u64()?;
                let mut message = match std::mem::replace(into, Response::Shed { id: 0 }) {
                    Response::Error { message, .. } => message,
                    _ => String::new(),
                };
                rd.str_into(&mut message)?;
                rd.finish()?;
                *into = Response::Error { id, message };
                Ok(())
            }
            _ => Err(bad("unknown response tag")),
        }
    }

    fn scratch() -> Self {
        Response::Shed { id: 0 }
    }
}

/// Read one frame in whichever format arrives, sniffing the first
/// byte; see [`read_frame_any_into`] for semantics. `Ok(None)` on
/// clean EOF.
pub fn read_frame_any<T: WireFrame, R: BufRead>(
    r: &mut R,
    payload: &mut Vec<u8>,
    line: &mut String,
) -> std::io::Result<Option<(T, WireProtocol)>> {
    let mut v = T::scratch();
    Ok(read_frame_any_into(r, payload, line, &mut v)?.map(|proto| (v, proto)))
}

/// Read one frame in whichever format arrives, decoding over `into`
/// (buffers reused — the shard reader's allocation-free path).
/// `payload` and `line` are the per-connection scratch buffers for the
/// binary and JSON arms respectively. Returns the format the frame
/// arrived in, or `Ok(None)` on clean EOF at a frame boundary.
///
/// Torn frames (EOF mid-header, mid-payload, or mid-line) surface as
/// `UnexpectedEof`; whole-but-malformed frames as `InvalidData`. A
/// malformed *binary* frame leaves the stream positioned at the next
/// frame boundary (its declared length was consumed), so a server can
/// report and resync, exactly like the JSON line path.
pub fn read_frame_any_into<T: WireFrame, R: BufRead>(
    r: &mut R,
    payload: &mut Vec<u8>,
    line: &mut String,
    into: &mut T,
) -> std::io::Result<Option<WireProtocol>> {
    loop {
        let first = {
            let buf = r.fill_buf()?;
            if buf.is_empty() {
                return Ok(None);
            }
            buf[0]
        };
        if first == BINARY_MAGIC {
            let mut header = [0u8; HEADER_LEN];
            r.read_exact(&mut header)?; // torn header ⇒ UnexpectedEof
            let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
            if len > MAX_FRAME_LEN {
                return Err(bad("binary frame length exceeds the cap"));
            }
            payload.clear();
            payload.resize(len, 0);
            r.read_exact(payload)?; // torn payload ⇒ UnexpectedEof
                                    // Validate the version only after consuming the declared
                                    // payload, so even a version-mismatched frame leaves the
                                    // stream frame-aligned.
            if header[1] != BINARY_VERSION {
                return Err(bad("unsupported binary wire version"));
            }
            T::decode_payload_into(payload, into)?;
            return Ok(Some(WireProtocol::Binary));
        }
        if read_frame_line(r, line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        *into = serde_json::from_str(line.trim()).map_err(std::io::Error::from)?;
        return Ok(Some(WireProtocol::Json));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let reqs = vec![
            Request::Score {
                id: 7,
                snapshot: QueueSnapshot {
                    free_procs: 3,
                    total_procs: 8,
                    queue_len: 2,
                    jobs: vec![rlscheduler::SnapshotJob {
                        wait: 12.5,
                        time_bound: 3600.0,
                        procs: 2,
                        can_run_now: true,
                    }],
                },
            },
            Request::ScoreRaw {
                id: 8,
                obs: vec![0.25f32, 0.5, 1.0],
                mask: vec![0.0f32, -1e9],
                queue_len: 1,
            },
            Request::Stats { id: 9 },
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        for want in &reqs {
            let got: Request = read_frame(&mut reader).unwrap().expect("frame present");
            assert_eq!(&got, want);
        }
        assert!(read_frame::<Request, _>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn f32_rows_survive_the_wire_bit_exactly() {
        // Awkward floats: subnormal, non-dyadic, huge mask offset, an
        // off-by-one-ulp neighbor of 0.3.
        let obs: Vec<f32> = vec![
            0.1,
            1.0 / 3.0,
            f32::MIN_POSITIVE / 2.0,
            -1e9,
            f32::from_bits(0.3f32.to_bits() + 1),
        ];
        let req = Request::ScoreRaw {
            id: 1,
            obs: obs.clone(),
            mask: vec![-1e9; 2],
            queue_len: 2,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut std::io::BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        let Request::ScoreRaw { obs: got, .. } = back else {
            panic!("variant changed")
        };
        for (a, b) in obs.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Action {
                id: 1,
                action: 3,
                shard: 0,
                served_by: ServedBy::Model,
            },
            Response::Action {
                id: 4,
                action: 0,
                shard: 2,
                served_by: ServedBy::Fallback,
            },
            Response::Shed { id: 2 },
            Response::Error {
                id: 3,
                message: "bad row".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &resps {
            write_frame(&mut buf, r).unwrap();
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        for want in &resps {
            let got: Response = read_frame(&mut reader).unwrap().unwrap();
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn stats_with_shard_health_round_trip() {
        let stats = ServeStats {
            served: 10,
            fallbacks: 3,
            shed: 1,
            deadlines: 2,
            batches: 4,
            max_batch: 5,
            swaps: 2,
            rollbacks: 1,
            restarts: 6,
            accept_failures: 7,
            p50_us: 12.5,
            p99_us: 99.0,
            max_us: 120.0,
            shards: vec![
                ShardHealth {
                    state: ShardState::Healthy,
                    restarts: 0,
                    panics: 0,
                },
                ShardHealth {
                    state: ShardState::Failed,
                    restarts: 3,
                    panics: 4,
                },
            ],
        };
        let resp = Response::Stats { id: 42, stats };
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        let back: Response = read_frame(&mut std::io::BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn served_by_tags_are_plain_strings_on_the_wire() {
        // The tag must stay greppable in logs and `nc` sessions.
        let line = serde_json::to_string(&Response::Action {
            id: 1,
            action: 0,
            shard: 0,
            served_by: ServedBy::Fallback,
        })
        .unwrap();
        assert!(line.contains("\"Fallback\""), "{line}");
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Score {
                id: 7,
                snapshot: QueueSnapshot {
                    free_procs: 3,
                    total_procs: 8,
                    queue_len: 2,
                    jobs: vec![
                        SnapshotJob {
                            wait: 12.5,
                            time_bound: 3600.0,
                            procs: 2,
                            can_run_now: true,
                        },
                        SnapshotJob {
                            wait: 0.1,
                            time_bound: 60.0,
                            procs: 1,
                            can_run_now: false,
                        },
                    ],
                },
            },
            Request::ScoreRaw {
                id: 8,
                obs: vec![0.25f32, 1.0 / 3.0, f32::MIN_POSITIVE / 2.0, -1e9],
                mask: vec![0.0f32, -1e9],
                queue_len: 1,
            },
            Request::Stats { id: 9 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Action {
                id: 1,
                action: 3,
                shard: 0,
                served_by: ServedBy::Model,
            },
            Response::Action {
                id: 4,
                action: 0,
                shard: 2,
                served_by: ServedBy::Fallback,
            },
            Response::Shed { id: 2 },
            Response::Error {
                id: 3,
                message: "bad row".into(),
            },
            Response::Stats {
                id: 42,
                stats: ServeStats {
                    served: 10,
                    fallbacks: 3,
                    shed: 1,
                    deadlines: 2,
                    batches: 4,
                    max_batch: 5,
                    swaps: 2,
                    rollbacks: 1,
                    restarts: 6,
                    accept_failures: 7,
                    p50_us: 12.5,
                    p99_us: 99.0,
                    max_us: 120.0,
                    shards: vec![
                        ShardHealth {
                            state: ShardState::Healthy,
                            restarts: 0,
                            panics: 0,
                        },
                        ShardHealth {
                            state: ShardState::Failed,
                            restarts: 3,
                            panics: 4,
                        },
                    ],
                },
            },
        ]
    }

    #[test]
    fn binary_requests_round_trip() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        let mut line = String::new();
        for want in sample_requests() {
            encode_binary_frame(&want, &mut wire);
            assert_eq!(wire[0], BINARY_MAGIC);
            assert_eq!(wire[1], BINARY_VERSION);
            let mut reader = std::io::BufReader::new(&wire[..]);
            let (got, proto) = read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line)
                .unwrap()
                .expect("frame present");
            assert_eq!(proto, WireProtocol::Binary);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn binary_responses_round_trip() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        let mut line = String::new();
        for want in sample_responses() {
            encode_binary_frame(&want, &mut wire);
            let mut reader = std::io::BufReader::new(&wire[..]);
            let (got, proto) = read_frame_any::<Response, _>(&mut reader, &mut payload, &mut line)
                .unwrap()
                .expect("frame present");
            assert_eq!(proto, WireProtocol::Binary);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn binary_f32_rows_survive_bit_exactly() {
        let obs: Vec<f32> = vec![
            0.1,
            1.0 / 3.0,
            f32::MIN_POSITIVE / 2.0,
            -1e9,
            f32::from_bits(0.3f32.to_bits() + 1),
        ];
        let mut wire = Vec::new();
        encode_score_raw_frame(&mut wire, 5, &obs, &[-1e9; 2], 2);
        let got: Request = decode_payload(&wire[HEADER_LEN..]).unwrap();
        let Request::ScoreRaw {
            id,
            obs: back,
            mask,
            queue_len,
        } = got
        else {
            panic!("wrong variant")
        };
        assert_eq!((id, queue_len), (5, 2));
        assert_eq!(mask.len(), 2);
        for (a, b) in obs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn score_raw_frame_helper_matches_request_encoding() {
        let req = Request::ScoreRaw {
            id: 11,
            obs: vec![1.5f32, -2.25],
            mask: vec![0.0f32],
            queue_len: 3,
        };
        let mut via_request = Vec::new();
        encode_binary_frame(&req, &mut via_request);
        let mut via_helper = Vec::new();
        encode_score_raw_frame(&mut via_helper, 11, &[1.5f32, -2.25], &[0.0f32], 3);
        assert_eq!(via_request, via_helper);
    }

    #[test]
    fn mixed_format_streams_sniff_per_frame() {
        // JSON, then binary, then JSON again on one connection.
        let a = Request::Stats { id: 1 };
        let b = Request::ScoreRaw {
            id: 2,
            obs: vec![0.5f32],
            mask: vec![0.0f32],
            queue_len: 1,
        };
        let c = Request::Stats { id: 3 };
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        encode_json_frame(&a, &mut scratch).unwrap();
        wire.extend_from_slice(&scratch);
        encode_binary_frame(&b, &mut scratch);
        wire.extend_from_slice(&scratch);
        encode_json_frame(&c, &mut scratch).unwrap();
        wire.extend_from_slice(&scratch);
        let mut reader = std::io::BufReader::new(&wire[..]);
        let mut payload = Vec::new();
        let mut line = String::new();
        let mut read = || read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line);
        assert_eq!(read().unwrap().unwrap(), (a, WireProtocol::Json));
        assert_eq!(read().unwrap().unwrap(), (b, WireProtocol::Binary));
        assert_eq!(read().unwrap().unwrap(), (c, WireProtocol::Json));
        assert!(read().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_binary_frames_are_unexpected_eof() {
        let mut wire = Vec::new();
        encode_score_raw_frame(&mut wire, 1, &[0.5f32, 0.25], &[0.0f32], 1);
        let mut payload = Vec::new();
        let mut line = String::new();
        // Every proper prefix — mid-header and mid-payload — is torn.
        for cut in 1..wire.len() {
            let mut reader = std::io::BufReader::new(&wire[..cut]);
            let err = read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line)
                .expect_err("truncated frame must error");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn malformed_binary_frames_are_invalid_data() {
        let mut payload = Vec::new();
        let mut line = String::new();
        let mut read_one = |wire: &[u8]| {
            let mut reader = std::io::BufReader::new(wire);
            read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line)
        };
        // Unknown tag.
        let mut unknown_tag = Vec::new();
        encode_binary_frame(&Request::Stats { id: 1 }, &mut unknown_tag);
        unknown_tag[HEADER_LEN] = 0xEE;
        // Payload shorter than its fields claims (length prefix says 1).
        let short = vec![BINARY_MAGIC, BINARY_VERSION, 1, 0, 0, 0, TAG_REQ_STATS];
        // Trailing bytes after a complete Stats payload.
        let mut trailing = Vec::new();
        encode_binary_frame(&Request::Stats { id: 1 }, &mut trailing);
        let plen = (trailing.len() - HEADER_LEN + 1) as u32;
        trailing[2..HEADER_LEN].copy_from_slice(&plen.to_le_bytes());
        trailing.push(0xAB);
        for (name, wire) in [
            ("unknown tag", unknown_tag),
            ("short payload", short),
            ("trailing bytes", trailing),
        ] {
            let err = read_one(&wire).expect_err(name);
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}: {err}");
        }
    }

    #[test]
    fn version_mismatch_leaves_the_stream_frame_aligned() {
        let good = Request::Stats { id: 2 };
        let mut bad = Vec::new();
        encode_binary_frame(&Request::Stats { id: 1 }, &mut bad);
        bad[1] = BINARY_VERSION + 1;
        let mut wire = bad;
        let mut scratch = Vec::new();
        encode_binary_frame(&good, &mut scratch);
        wire.extend_from_slice(&scratch);
        let mut reader = std::io::BufReader::new(&wire[..]);
        let mut payload = Vec::new();
        let mut line = String::new();
        let err = read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line)
            .expect_err("bad version must error");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The mismatched frame's declared payload was consumed, so the
        // next read starts exactly at the following frame.
        let (got, _) = read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line)
            .unwrap()
            .expect("next frame intact");
        assert_eq!(got, good);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut wire = vec![BINARY_MAGIC, BINARY_VERSION];
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = std::io::BufReader::new(&wire[..]);
        let err = read_frame_any::<Request, _>(&mut reader, &mut Vec::new(), &mut String::new())
            .expect_err("cap must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn decode_into_reuses_matching_variant_buffers() {
        let mut wire = Vec::new();
        encode_score_raw_frame(&mut wire, 1, &[0.5f32, 0.25], &[0.0f32, -1e9], 2);
        let mut into = Request::ScoreRaw {
            id: 0,
            obs: Vec::with_capacity(8),
            mask: Vec::with_capacity(8),
            queue_len: 0,
        };
        let (obs_ptr, mask_ptr) = match &into {
            Request::ScoreRaw { obs, mask, .. } => (obs.as_ptr(), mask.as_ptr()),
            _ => unreachable!(),
        };
        Request::decode_payload_into(&wire[HEADER_LEN..], &mut into).unwrap();
        match &into {
            Request::ScoreRaw {
                id,
                obs,
                mask,
                queue_len,
            } => {
                assert_eq!((*id, *queue_len), (1, 2));
                assert_eq!(obs.as_ptr(), obs_ptr, "obs buffer was reused");
                assert_eq!(mask.as_ptr(), mask_ptr, "mask buffer was reused");
                assert_eq!(obs, &[0.5f32, 0.25]);
                assert_eq!(mask, &[0.0f32, -1e9]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    fn sample_registry_snapshot() -> RegistrySnapshot {
        RegistrySnapshot {
            metrics: vec![
                MetricSnapshot {
                    name: "rlsched_serve_inbox_depth".into(),
                    labels: vec![("shard".into(), "0".into())],
                    value: MetricValue::Gauge(2.5),
                },
                MetricSnapshot {
                    name: "rlsched_serve_latency_ns".into(),
                    labels: vec![("shard".into(), "0".into())],
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        max_ns: 1_000,
                        buckets: vec![(3, 1), (2, 1), (205, 1)],
                    }),
                },
                MetricSnapshot {
                    name: "rlsched_serve_served_total".into(),
                    labels: vec![],
                    value: MetricValue::Counter(42),
                },
            ],
        }
    }

    #[test]
    fn metrics_frames_round_trip_json_and_binary() {
        let req = Request::Metrics { id: 11 };
        let resp = Response::Metrics {
            id: 11,
            metrics: sample_registry_snapshot(),
        };

        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        write_frame(&mut buf, &resp).unwrap();
        let mut reader = std::io::BufReader::new(&buf[..]);
        let got_req: Request = read_frame(&mut reader).unwrap().unwrap();
        let got_resp: Response = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(got_req, req);
        assert_eq!(got_resp, resp);

        let mut wire = Vec::new();
        encode_binary_frame(&req, &mut wire);
        assert_eq!(decode_payload::<Request>(&wire[HEADER_LEN..]).unwrap(), req);
        encode_binary_frame(&resp, &mut wire);
        assert_eq!(
            decode_payload::<Response>(&wire[HEADER_LEN..]).unwrap(),
            resp
        );
    }

    #[test]
    fn hostile_metrics_counts_are_rejected() {
        // A declared metric/bucket count far beyond what the payload
        // holds must fail as InvalidData before any giant reserve.
        let mut wire = Vec::new();
        encode_binary_frame(
            &Response::Metrics {
                id: 1,
                metrics: sample_registry_snapshot(),
            },
            &mut wire,
        );
        // Overwrite the metric count (right after tag + id) with u32::MAX.
        let off = HEADER_LEN + 1 + 8;
        wire[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_payload::<Response>(&wire[HEADER_LEN..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
