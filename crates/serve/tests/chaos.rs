//! The chaos suite: scripted faults against a live serving tier.
//!
//! Every test drives the production supervision/fallback/validation
//! machinery through [`FaultPlan`] — a deterministic script, so each
//! failure sequence replays identically — and asserts the fault-model
//! invariants end to end over a live listener. Clients connect through
//! `ServerHandle::connect`, so the suite follows the `RLSCHED_WIRE`
//! pin (CI replays it with `RLSCHED_WIRE=binary-uds`); tests that need
//! a raw `TcpStream` pin TCP explicitly.
//!
//! The invariants:
//!
//! * **Exactly one resolution per request**: a model decision, a
//!   fallback decision, or a typed client error. Never silence, never
//!   a duplicate.
//! * **Model answers stay bit-identical** to in-process scoring even
//!   while the tier is degrading and recovering around them (canary
//!   rows carry their expected actions; CI replays this file on both
//!   SIMD dispatch arms).
//! * **Fallback answers are the heuristic's bits**: first-valid-slot
//!   (FCFS) for raw rows, `PriorityScheduler` kind-for-kind for
//!   snapshot requests — pinned by a whole-episode equality below.
//! * **The tier returns to healthy** after the script runs dry, and a
//!   poisoned checkpoint can never take it down: propose → validate →
//!   commit, with generation rollback.

use std::sync::Arc;
use std::time::Duration;

use rlsched_rl::{PolicyModel, PpoConfig};
use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_serve::protocol::{read_frame, write_frame, Request, Response};
use rlsched_serve::{
    ClientConfig, ClientError, FaultPlan, ListenAddr, ProposeError, RemotePolicy, ServeClient,
    ServeConfig, ServedBy, Server, ShardState,
};
use rlsched_sim::{run_episode, MetricKind, SimConfig};
use rlsched_swf::{Job, JobTrace};
use rlscheduler::{
    Agent, AgentConfig, CanaryBatch, CanaryError, ObsConfig, PolicyKind, PolicyNet, ScorerSnapshot,
};

fn agent_for(window: usize, seed: u64) -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: window,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed,
    })
}

/// A toy trace with enough queue contention that policies differ. The
/// queue never grows past the 64-slot window, so snapshot truncation
/// cannot blur the fallback-equivalence comparison.
fn toy_trace() -> JobTrace {
    let jobs = (0..40u32)
        .map(|i| {
            Job::new(
                i + 1,
                i as f64 * 15.0,
                60.0 + (i % 5) as f64 * 150.0,
                1 + (i % 4),
                900.0 + (i % 3) as f64 * 600.0,
            )
        })
        .collect();
    JobTrace::new(jobs, 4)
}

/// One-shard config tuned for fast, deterministic chaos runs.
fn chaos_config(faults: Arc<FaultPlan>) -> ServeConfig {
    ServeConfig {
        shards: 1,
        batch_cap: 4,
        coalesce_window: Duration::from_micros(200),
        queue_depth: 512,
        fallback: Some(HeuristicKind::Sjf),
        restart_budget: 3,
        restart_backoff: Duration::from_millis(1),
        restart_backoff_cap: Duration::from_millis(20),
        queue_deadline: None,
        faults: Some(faults),
        ..ServeConfig::default()
    }
}

/// Zero lost requests through a mid-burst shard panic: the panicked
/// batch is answered by the fallback (raw rows ⇒ first valid slot),
/// the worker respawns, and every later model answer carries the exact
/// in-process bits — asserted row by row against the canary.
#[test]
fn shard_panic_recovers_with_zero_lost_requests() {
    let agent = agent_for(16, 3);
    let canary = CanaryBatch::probe(&agent, 8, 17);
    let faults = Arc::new(FaultPlan::new());
    faults.panic_at(0, 0, 1); // the first coalesced batch dies
    let mut cfg = chaos_config(faults);
    // Raw TcpStream below: pin TCP regardless of RLSCHED_WIRE.
    cfg.addr = ListenAddr::Tcp("127.0.0.1:0".into());
    let handle =
        Server::spawn(agent.scorer_snapshot(), *agent.encoder(), cfg).expect("server spawns");

    const N: u64 = 64;
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    for id in 0..N {
        let (obs, mask, queue_len, _) = canary.row(id as usize % canary.rows());
        write_frame(
            &mut writer,
            &Request::ScoreRaw {
                id,
                obs: obs.to_vec(),
                mask: mask.to_vec(),
                queue_len: queue_len as u64,
            },
        )
        .unwrap();
    }
    let mut seen = vec![false; N as usize];
    let mut model = 0u64;
    let mut fallback = 0u64;
    for _ in 0..N {
        match read_frame::<Response, _>(&mut reader).unwrap().unwrap() {
            Response::Action {
                id,
                action,
                served_by,
                ..
            } => {
                assert!(
                    !std::mem::replace(&mut seen[id as usize], true),
                    "duplicate resolution for id {id}"
                );
                let (_, _, _, expected) = canary.row(id as usize % canary.rows());
                match served_by {
                    ServedBy::Model => {
                        model += 1;
                        assert_eq!(
                            action as usize, expected,
                            "model answer for id {id} must be the in-process bits"
                        );
                    }
                    ServedBy::Fallback => {
                        fallback += 1;
                        // Raw-row fallback: the first valid slot.
                        assert_eq!(action, 0, "raw fallback is FCFS for id {id}");
                    }
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(seen.iter().all(|&s| s), "every request resolved");
    assert!(fallback >= 1, "the panicked batch took the fallback arm");
    assert!(model >= 1, "the respawned worker served the rest");
    let stats = handle.shutdown();
    assert_eq!(stats.served, model);
    assert_eq!(stats.fallbacks, fallback);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.shards[0].panics, 1);
    assert_eq!(stats.shards[0].state, ShardState::Healthy);
    assert_eq!(stats.shed, 0, "fallback replaces bare sheds");
}

/// Restart-budget exhaustion parks the shard in `Failed`, where it
/// answers everything through the fallback — and a *validated* weight
/// swap (propose → canary → commit) revives it back to model serving.
#[test]
fn budget_exhaustion_fails_over_and_validated_swap_revives() {
    let agent = agent_for(16, 5);
    let canary = CanaryBatch::probe(&agent, 8, 23);
    let faults = Arc::new(FaultPlan::new());
    faults.panic_at(0, 0, 1);
    let mut cfg = chaos_config(faults);
    cfg.restart_budget = 0; // one strike and the shard is out
    let handle =
        Server::spawn(agent.scorer_snapshot(), *agent.encoder(), cfg).expect("server spawns");
    let mut client = handle.connect().unwrap();

    // Every decision while Failed is a fallback decision.
    for i in 0..8 {
        let (obs, mask, queue_len, _) = canary.row(i % canary.rows());
        let d = client.score_raw(obs, mask, queue_len).unwrap();
        assert_eq!(d.served_by, ServedBy::Fallback, "request {i} while failed");
    }
    let stats = handle.stats();
    assert_eq!(stats.shards[0].state, ShardState::Failed);
    assert_eq!(stats.served, 0);
    assert_eq!(stats.fallbacks, 8);

    // A validated swap is the revival signal.
    let gen = handle
        .propose_scorer(agent.scorer_snapshot(), &canary)
        .expect("a healthy checkpoint commits");
    assert_eq!(gen, 1);
    // The failed shard polls the generation every 25ms; give it a few
    // polls, then demand model service with exact bits.
    let mut revived = false;
    for _ in 0..200 {
        let (obs, mask, queue_len, expected) = canary.row(0);
        let d = client.score_raw(obs, mask, queue_len).unwrap();
        if d.served_by == ServedBy::Model {
            assert_eq!(d.action, expected, "post-revival bits match in-process");
            revived = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(revived, "validated swap must revive the failed shard");
    let stats = handle.shutdown();
    assert_eq!(stats.shards[0].state, ShardState::Healthy);
    assert!(stats.restarts >= 1);
    assert_eq!(stats.swaps, 1);
}

/// The fallback arm IS `PriorityScheduler`: an episode scheduled
/// entirely through a failed tier produces exactly the metrics of the
/// in-process heuristic with the configured kind.
#[test]
fn failed_tier_fallback_equals_priority_scheduler_episode() {
    let trace = toy_trace();
    let kind = HeuristicKind::Wfp3;
    let expected = run_episode(
        &trace,
        SimConfig::default(),
        &mut PriorityScheduler::new(kind),
    )
    .unwrap();

    let agent = agent_for(64, 7);
    let faults = Arc::new(FaultPlan::new());
    faults.panic_at(0, 0, 1);
    let mut cfg = chaos_config(faults);
    cfg.restart_budget = 0;
    cfg.fallback = Some(kind);
    let handle =
        Server::spawn(agent.scorer_snapshot(), *agent.encoder(), cfg).expect("server spawns");
    let client = handle.connect().unwrap();
    let mut policy = RemotePolicy::new(client, 64);
    let remote = run_episode(&trace, SimConfig::default(), &mut policy).unwrap();
    assert_eq!(
        expected, remote,
        "fallback-served episode must equal PriorityScheduler::{kind:?} exactly"
    );
    assert!(
        policy.remote_fallbacks() > 0,
        "the tier was failed throughout"
    );
    assert_eq!(policy.sheds(), 0, "fallback, not shed");
    handle.shutdown();
}

/// Checkpoint validation: a NaN-poisoned snapshot and a wrong-agent
/// snapshot are both rejected without touching the serving weights,
/// and the tier keeps answering with the incumbent's exact bits.
#[test]
fn poisoned_checkpoints_are_rejected_and_bits_unchanged() {
    let agent = agent_for(16, 3);
    let canary = CanaryBatch::probe(&agent, 12, 29);
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        chaos_config(Arc::new(FaultPlan::new())),
    )
    .expect("server spawns");

    // NaN in the output layer: caught by the all-finite walk.
    let mut poisoned = PolicyNet::build(PolicyKind::Kernel, 16, 3);
    for v in poisoned.params_mut().last_mut().unwrap().data_mut() {
        *v = f32::NAN;
    }
    let poisoned = ScorerSnapshot::new(
        &poisoned,
        agent.encoder().obs_dim(),
        agent.encoder().n_actions(),
    );
    assert_eq!(
        handle.propose_scorer(poisoned, &canary),
        Err(ProposeError::NonFinite)
    );
    assert_eq!(handle.generation(), 0, "rejection leaves the weights alone");

    // A checkpoint from the wrong training run: caught by the canary.
    let impostor = agent_for(16, 4);
    let err = handle
        .propose_scorer(impostor.scorer_snapshot(), &canary)
        .expect_err("wrong weights must trip the canary");
    assert!(
        matches!(err, ProposeError::Canary(CanaryError::Mismatch { .. })),
        "{err}"
    );
    assert_eq!(handle.generation(), 0);

    // A wrong-window checkpoint: caught before scoring anything.
    let narrow = agent_for(8, 3);
    let err = handle
        .propose_scorer(narrow.scorer_snapshot(), &canary)
        .expect_err("dims mismatch must be rejected");
    assert!(matches!(err, ProposeError::Dims { .. }), "{err}");

    // The tier never served anything but the incumbent's bits.
    let mut client = handle.connect().unwrap();
    for i in 0..canary.rows() {
        let (obs, mask, queue_len, expected) = canary.row(i);
        let d = client.score_raw(obs, mask, queue_len).unwrap();
        assert_eq!((d.action, d.served_by), (expected, ServedBy::Model));
    }
    let stats = handle.shutdown();
    assert_eq!(stats.rollbacks, 3, "every rejection is counted");
    assert_eq!(stats.swaps, 0);
}

/// The post-deployment guard: a committed checkpoint whose live eval
/// metric regresses past tolerance is rolled back to the previous
/// generation, and serving returns to the incumbent's exact bits.
#[test]
fn eval_regression_rolls_back_to_the_previous_generation() {
    let agent_a = agent_for(16, 3);
    let agent_b = agent_for(16, 4);
    let canary_a = CanaryBatch::probe(&agent_a, 10, 31);
    let canary_b = CanaryBatch::probe(&agent_b, 10, 31);
    let handle = Server::spawn(
        agent_a.scorer_snapshot(),
        *agent_a.encoder(),
        chaos_config(Arc::new(FaultPlan::new())),
    )
    .expect("server spawns");

    assert!(!handle.record_eval(1.0), "first eval sets the baseline");
    assert_eq!(
        handle.propose_scorer(agent_b.scorer_snapshot(), &canary_b),
        Ok(1),
        "B validates against its own canary"
    );
    // B's bits serve…
    let mut client = handle.connect().unwrap();
    let (obs, mask, queue_len, expected_b) = canary_b.row(0);
    let d = client.score_raw(obs, mask, queue_len).unwrap();
    assert_eq!((d.action, d.served_by), (expected_b, ServedBy::Model));

    // …until the probe metric regresses (lower is better; 2.0 ≫ 1.1).
    assert!(handle.record_eval(2.0), "regression triggers rollback");
    assert_eq!(handle.generation(), 2, "rollback is a new generation");
    // Shards re-read the slot at the next batch: A's bits again.
    let mut back = false;
    for _ in 0..200 {
        let (obs, mask, queue_len, expected_a) = canary_a.row(0);
        let d = client.score_raw(obs, mask, queue_len).unwrap();
        assert_eq!(d.served_by, ServedBy::Model);
        if d.action == expected_a {
            back = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        back,
        "serving must return to the previous generation's bits"
    );
    for i in 0..canary_a.rows() {
        let (obs, mask, queue_len, expected_a) = canary_a.row(i);
        let d = client.score_raw(obs, mask, queue_len).unwrap();
        assert_eq!(d.action, expected_a, "row {i} is A's bits after rollback");
    }
    assert!(
        !handle.rollback_scorer(),
        "the retained generation was consumed"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.rollbacks, 1);
}

/// A stalled shard must not stall its queue: requests that age past
/// the in-queue deadline are answered by the fallback immediately at
/// admission, and the tier is healthy again once the stall passes.
#[test]
fn slow_shard_stall_expires_deadlines_into_fallback() {
    let agent = agent_for(16, 3);
    let canary = CanaryBatch::probe(&agent, 8, 37);
    let faults = Arc::new(FaultPlan::new());
    faults.stall_at(0, 0, Duration::from_millis(300));
    let mut cfg = chaos_config(faults);
    cfg.queue_deadline = Some(Duration::from_millis(50));
    // Raw TcpStream below: pin TCP regardless of RLSCHED_WIRE.
    cfg.addr = ListenAddr::Tcp("127.0.0.1:0".into());
    let handle =
        Server::spawn(agent.scorer_snapshot(), *agent.encoder(), cfg).expect("server spawns");

    const N: u64 = 32;
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    for id in 0..N {
        let (obs, mask, queue_len, _) = canary.row(id as usize % canary.rows());
        write_frame(
            &mut writer,
            &Request::ScoreRaw {
                id,
                obs: obs.to_vec(),
                mask: mask.to_vec(),
                queue_len: queue_len as u64,
            },
        )
        .unwrap();
    }
    let mut seen = vec![false; N as usize];
    let (mut model, mut fallback) = (0u64, 0u64);
    for _ in 0..N {
        match read_frame::<Response, _>(&mut reader).unwrap().unwrap() {
            Response::Action { id, served_by, .. } => {
                assert!(!std::mem::replace(&mut seen[id as usize], true));
                match served_by {
                    ServedBy::Model => model += 1,
                    ServedBy::Fallback => fallback += 1,
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(model + fallback, N, "every request resolved exactly once");
    assert!(model >= 1, "the stalled batch itself still scores");
    assert!(
        fallback >= 1,
        "requests aged past the deadline take the fallback arm"
    );
    // The stall script is spent: the tier serves models again.
    let mut client = handle.connect().unwrap();
    let (obs, mask, queue_len, expected) = canary.row(1);
    let d = client.score_raw(obs, mask, queue_len).unwrap();
    assert_eq!((d.action, d.served_by), (expected, ServedBy::Model));
    let stats = handle.shutdown();
    assert!(stats.deadlines >= 1);
    assert_eq!(stats.deadlines, fallback);
    assert_eq!(stats.shards[0].panics, 0);
}

/// Client resilience: a connection dropped mid-response (torn frame,
/// then reset) is retried on a fresh connection with the same id —
/// and resolves to a decision, not a panic.
#[test]
fn client_reconnects_through_a_connection_drop_mid_response() {
    use rlsched_serve::write_torn_frame;
    // A scripted fake server: connection 1 tears the response frame
    // and drops; connection 2 answers properly.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (conn1, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(conn1.try_clone().unwrap());
        let req: Request = read_frame(&mut reader).unwrap().unwrap();
        let mut w = conn1.try_clone().unwrap();
        write_torn_frame(
            &mut w,
            &Response::Action {
                id: req.id(),
                action: 0,
                shard: 0,
                served_by: ServedBy::Model,
            },
            9, // half a frame, no newline
        )
        .unwrap();
        drop((reader, w, conn1)); // mid-response drop

        let (conn2, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(conn2.try_clone().unwrap());
        let req: Request = read_frame(&mut reader).unwrap().unwrap();
        let mut w = conn2.try_clone().unwrap();
        write_frame(
            &mut w,
            &Response::Action {
                id: req.id(),
                action: 2,
                shard: 0,
                served_by: ServedBy::Model,
            },
        )
        .unwrap();
        req.id()
    });

    // The scripted fake above speaks newline-JSON: pin the protocol so
    // the test is identical under an RLSCHED_WIRE=binary pin.
    let mut client = ServeClient::connect(addr)
        .unwrap()
        .with_protocol(rlsched_serve::WireProtocol::Json)
        .with_config(ClientConfig {
            deadline: Some(Duration::from_secs(5)),
            max_retries: 3,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            seed: 7,
        });
    let obs = vec![0.25f32; 4];
    let mask = vec![0.0f32, 0.0, -1e9, -1e9];
    let d = client.score_raw(&obs, &mask, 3).expect("retry resolves");
    assert_eq!(d.action, 2, "the answer came from the second connection");
    let replay_id = fake.join().unwrap();
    assert_eq!(replay_id, 0, "the retry resent the SAME request id");
}

/// A configured deadline turns an unresponsive tier into a typed
/// error, not a hang — and the tier finishes its stall and recovers.
#[test]
fn client_deadline_is_a_typed_error_not_a_hang() {
    let agent = agent_for(16, 3);
    let canary = CanaryBatch::probe(&agent, 4, 41);
    let faults = Arc::new(FaultPlan::new());
    faults.stall_at(0, 0, Duration::from_millis(400));
    let handle = Server::spawn(
        agent.scorer_snapshot(),
        *agent.encoder(),
        chaos_config(faults),
    )
    .expect("server spawns");

    let mut impatient = handle.connect().unwrap().with_config(ClientConfig {
        deadline: Some(Duration::from_millis(80)),
        max_retries: 0,
        ..ClientConfig::default()
    });
    let (obs, mask, queue_len, _) = canary.row(0);
    let started = std::time::Instant::now();
    let err = impatient
        .score_raw(obs, mask, queue_len)
        .expect_err("the stalled tier cannot answer in 80ms");
    assert!(matches!(err, ClientError::Deadline), "{err}");
    assert!(
        started.elapsed() < Duration::from_millis(350),
        "the deadline bounded the wait"
    );

    // Patience pays: the stall is spent, model service resumes.
    let mut patient = handle.connect().unwrap();
    let (obs, mask, queue_len, expected) = canary.row(1);
    let d = patient.score_raw(obs, mask, queue_len).unwrap();
    assert_eq!((d.action, d.served_by), (expected, ServedBy::Model));
    handle.shutdown();
}

/// Torn *request* frames: a client dying mid-write closes its
/// connection cleanly (no error storm, no stuck reader) and the tier
/// keeps serving everyone else.
#[test]
fn torn_request_frames_leave_the_server_serving() {
    use rlsched_serve::write_torn_frame;
    let agent = agent_for(16, 3);
    let canary = CanaryBatch::probe(&agent, 4, 43);
    let mut cfg = chaos_config(Arc::new(FaultPlan::new()));
    // Raw TcpStream below: pin TCP regardless of RLSCHED_WIRE.
    cfg.addr = ListenAddr::Tcp("127.0.0.1:0".into());
    let handle =
        Server::spawn(agent.scorer_snapshot(), *agent.encoder(), cfg).expect("server spawns");

    // Die mid-frame: the server sees a truncated line and EOF.
    let (obs, mask, queue_len, _) = canary.row(0);
    let mut torn = std::net::TcpStream::connect(handle.addr()).unwrap();
    write_torn_frame(
        &mut torn,
        &Request::ScoreRaw {
            id: 1,
            obs: obs.to_vec(),
            mask: mask.to_vec(),
            queue_len: queue_len as u64,
        },
        20,
    )
    .unwrap();
    drop(torn);

    // Garbage with a newline: the server reports and resyncs.
    let mut noisy = std::net::TcpStream::connect(handle.addr()).unwrap();
    use std::io::Write;
    noisy.write_all(b"{\"Score\":{\"id\":oops\n").unwrap();
    let mut reader = std::io::BufReader::new(noisy.try_clone().unwrap());
    let resp: Response = read_frame(&mut reader).unwrap().unwrap();
    assert!(matches!(resp, Response::Error { id: 0, .. }), "{resp:?}");

    // Bystanders are unaffected, bits intact.
    let mut client = handle.connect().unwrap();
    for i in 0..canary.rows() {
        let (obs, mask, queue_len, expected) = canary.row(i);
        let d = client.score_raw(obs, mask, queue_len).unwrap();
        assert_eq!((d.action, d.served_by), (expected, ServedBy::Model));
    }
    let stats = handle.shutdown();
    assert_eq!(stats.served, canary.rows() as u64);
    assert_eq!(stats.shards[0].panics, 0, "torn frames never reach a shard");
}

/// Telemetry survives the failure model. The registry handles share
/// storage with the server, not with any one worker incarnation, so a
/// shard panic + respawn keeps every counter monotone; the wire scrape
/// (`Request::Metrics`) is internally consistent mid-traffic (each
/// histogram's bucket counts sum to its `count`); and the `Stats`
/// summary is assembled from single reads of the same counters, so its
/// totals equal the sum of the per-shard registry parts exactly — no
/// torn totals.
#[test]
fn metrics_survive_panics_with_monotone_counters() {
    use rlsched_obs::MetricValue;

    let agent = agent_for(16, 11);
    let canary = CanaryBatch::probe(&agent, 8, 31);
    let faults = Arc::new(FaultPlan::new());
    faults.panic_at(0, 0, 1); // shard 0 dies mid-run and respawns
    let mut cfg = chaos_config(faults);
    cfg.shards = 2;
    let handle =
        Server::spawn(agent.scorer_snapshot(), *agent.encoder(), cfg).expect("server spawns");
    let mut client = handle.connect().unwrap();
    let mut scraper = handle.connect().unwrap();

    const N: usize = 48;
    let mut mid = None;
    for i in 0..N {
        let (obs, mask, queue_len, _) = canary.row(i % canary.rows());
        client.score_raw(obs, mask, queue_len).unwrap();
        if i == N / 2 {
            mid = Some(scraper.metrics().unwrap());
        }
    }
    let mid = mid.unwrap();
    let end = scraper.metrics().unwrap();

    // Every counter present at the mid scrape is monotone through the
    // panic/respawn window (idempotent registration = shared storage).
    let mut checked = 0;
    for m in &mid.metrics {
        if let MetricValue::Counter(v) = m.value {
            let labels: Vec<(&str, &str)> = m
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let after = end
                .counter(&m.name, &labels)
                .unwrap_or_else(|| panic!("{} vanished between scrapes", m.name));
            assert!(after >= v, "{} went backwards: {v} -> {after}", m.name);
            checked += 1;
        }
    }
    assert!(checked >= 10, "expected a real counter population");

    // The scrape is internally consistent even while shards are
    // recording into it: sparse bucket counts always sum to `count`.
    for m in &end.metrics {
        if let MetricValue::Histogram(h) = &m.value {
            let sum: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
            assert_eq!(sum, h.count, "{}: torn histogram read", m.name);
        }
    }

    // The respawn left its marks, on shard 0 only.
    assert_eq!(
        end.counter("rlsched_serve_panics_total", &[("shard", "0")]),
        Some(1)
    );
    assert_eq!(
        end.counter("rlsched_serve_restarts_total", &[("shard", "0")]),
        Some(1)
    );
    assert_eq!(
        end.counter("rlsched_serve_panics_total", &[("shard", "1")]),
        Some(0)
    );

    // Exactly one resolution per request, split between the arms; the
    // model-served rows are the ones with a latency sample.
    let served = end.counter_sum("rlsched_serve_served_total");
    let fallbacks = end.counter_sum("rlsched_serve_fallbacks_total");
    assert_eq!(served + fallbacks, N as u64);
    assert!(fallbacks >= 1, "the panicked batch fell back");
    let latency = end.histogram_merged("rlsched_serve_latency_ns");
    assert_eq!(latency.count, served);

    // Stats is a view over the same registry: totals equal the sum of
    // the per-shard parts it reports, and both match the scrape.
    let stats = handle.shutdown();
    assert_eq!(stats.served, served);
    assert_eq!(stats.fallbacks, fallbacks);
    assert_eq!(
        stats.restarts,
        stats.shards.iter().map(|s| s.restarts).sum::<u64>(),
        "totals must be the sum of the per-shard parts they shipped with"
    );
    assert_eq!(
        end.counter_sum("rlsched_serve_panics_total"),
        stats.shards.iter().map(|s| s.panics).sum::<u64>()
    );
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.shed, 0);
}
