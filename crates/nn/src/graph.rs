//! Tape-based reverse-mode automatic differentiation.
//!
//! Define-by-run: every op evaluates eagerly and records itself on the tape
//! (an arena `Vec<Node>`); [`Graph::backward`] runs the tape in reverse.
//! Because [`Var`] ids are handed out in construction order, the tape is
//! already topologically sorted — backpropagation is a single reverse scan
//! with no pointer chasing, the arena idiom the perf guides recommend over
//! `Rc<RefCell<…>>` graphs.
//!
//! The op set is exactly what the RLScheduler networks need: dense algebra
//! and activations for the kernel/MLP networks (Figs 5–6 of the paper),
//! `conv2d`/`max_pool2d` for the LeNet comparison of Fig 8 / Table IV, and
//! `log_softmax`/`select_cols`/`clamp`/`min_elem` for the PPO clipped
//! surrogate objective.

use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Leaf; `requires_grad` marks parameters.
    Leaf { requires_grad: bool },
    MatMul(usize, usize),
    /// `a + b` where `b` is a vector broadcast over the rows of `a`.
    AddBias(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MinElem(usize, usize),
    Scale(usize, f32),
    AddScalar(usize),
    Relu(usize),
    Tanh(usize),
    Sigmoid(usize),
    Exp(usize),
    Clamp(usize, f32, f32),
    LogSoftmax(usize),
    SelectCols(usize, Vec<usize>),
    SumRows(usize),
    Mean(usize),
    Sum(usize),
    Reshape(usize),
    Conv2d { x: usize, w: usize, b: usize, stride: usize },
    MaxPool2d { x: usize, size: usize },
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// The autodiff tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::with_capacity(64) }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, grad: None, op });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a node after [`Graph::backward`]; zeros if untouched.
    pub fn grad(&self, v: Var) -> Tensor {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => Tensor::zeros(self.nodes[v.0].value.shape()),
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---------------------------------------------------------------- leaves

    /// A constant input (no gradient tracked through optimizers).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf { requires_grad: false })
    }

    /// A parameter leaf (gradient wanted).
    pub fn param(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf { requires_grad: true })
    }

    // ------------------------------------------------------------------- ops

    /// Matrix product `a @ b` of 2-D tensors.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Row-broadcast `a + bias` where `bias` has `a.cols()` elements.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(av.shape().len(), 2, "add_bias lhs must be 2-D");
        assert_eq!(bv.len(), av.cols(), "bias length must equal columns");
        let (m, n) = (av.rows(), av.cols());
        let mut out = av.clone();
        for i in 0..m {
            for j in 0..n {
                *out.at_mut(i, j) += bv.data()[j];
            }
        }
        self.push(out, Op::AddBias(a.0, bias.0))
    }

    fn zip_ew(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32, op: Op) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "elementwise shape mismatch");
        let data = av
            .data()
            .iter()
            .zip(bv.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        let t = Tensor::from_vec(data, av.shape());
        self.push(t, op)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, |x, y| x + y, Op::Add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, |x, y| x - y, Op::Sub(a.0, b.0))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, |x, y| x * y, Op::Mul(a.0, b.0))
    }

    /// Elementwise minimum (the PPO clipped-objective combiner).
    pub fn min_elem(&mut self, a: Var, b: Var) -> Var {
        self.zip_ew(a, b, f32::min, Op::MinElem(a.0, b.0))
    }

    /// Multiply by a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * c);
        self.push(v, Op::Scale(a.0, c))
    }

    /// Add a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + c);
        self.push(v, Op::AddScalar(a.0))
    }

    /// True when the node is a parameter leaf (created via [`Graph::param`]).
    pub fn is_param(&self, v: Var) -> bool {
        matches!(self.nodes[v.0].op, Op::Leaf { requires_grad: true })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::exp);
        self.push(v, Op::Exp(a.0))
    }

    /// Clamp to `[lo, hi]`; gradient passes only strictly inside the range.
    pub fn clamp(&mut self, a: Var, lo: f32, hi: f32) -> Var {
        assert!(lo <= hi);
        let v = self.nodes[a.0].value.map(|x| x.clamp(lo, hi));
        self.push(v, Op::Clamp(a.0, lo, hi))
    }

    /// Row-wise log-softmax of a 2-D tensor (numerically stabilized).
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.shape().len(), 2, "log_softmax requires 2-D");
        let (m, n) = (av.rows(), av.cols());
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let row = &av.data()[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = mx + row.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln();
            for j in 0..n {
                *out.at_mut(i, j) = row[j] - lse;
            }
        }
        self.push(out, Op::LogSoftmax(a.0))
    }

    /// Pick one column per row: `out[i] = a[i, idx[i]]`.
    pub fn select_cols(&mut self, a: Var, idx: &[usize]) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.shape().len(), 2, "select_cols requires 2-D");
        assert_eq!(idx.len(), av.rows(), "one index per row");
        let n = av.cols();
        let data: Vec<f32> = idx
            .iter()
            .enumerate()
            .map(|(i, &j)| {
                assert!(j < n, "column index {j} out of range");
                av.at(i, j)
            })
            .collect();
        let t = Tensor::from_vec(data, &[idx.len()]);
        self.push(t, Op::SelectCols(a.0, idx.to_vec()))
    }

    /// Row sums of a 2-D tensor: `[m, n] -> [m]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.shape().len(), 2, "sum_rows requires 2-D");
        let (m, n) = (av.rows(), av.cols());
        let data: Vec<f32> = (0..m)
            .map(|i| av.data()[i * n..(i + 1) * n].iter().sum())
            .collect();
        let t = Tensor::from_vec(data, &[m]);
        self.push(t, Op::SumRows(a.0))
    }

    /// Mean over all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let v = Tensor::scalar(av.sum() / av.len() as f32);
        self.push(v, Op::Mean(a.0))
    }

    /// Sum over all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(v, Op::Sum(a.0))
    }

    /// View with a different shape (volume preserved).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.nodes[a.0].value.reshaped(shape);
        self.push(v, Op::Reshape(a.0))
    }

    /// Valid (unpadded) 2-D convolution.
    ///
    /// `x`: `[B, C, H, W]`, `w`: `[O, C, KH, KW]`, `b`: `[O]`; output
    /// `[B, O, OH, OW]` with `OH = (H-KH)/stride + 1`.
    pub fn conv2d(&mut self, x: Var, w: Var, b: Var, stride: usize) -> Var {
        assert!(stride >= 1);
        let xv = &self.nodes[x.0].value;
        let wv = &self.nodes[w.0].value;
        let bv = &self.nodes[b.0].value;
        let (bs, c, h, wd) = dims4(xv.shape());
        let (o, c2, kh, kw) = dims4(wv.shape());
        assert_eq!(c, c2, "conv2d channel mismatch");
        assert_eq!(bv.len(), o, "conv2d bias length");
        assert!(h >= kh && wd >= kw, "kernel larger than input");
        let oh = (h - kh) / stride + 1;
        let ow = (wd - kw) / stride + 1;
        let mut out = Tensor::zeros(&[bs, o, oh, ow]);
        let xd = xv.data();
        let wdv = wv.data();
        let od = out.data_mut();
        for bi in 0..bs {
            for oi in 0..o {
                for y in 0..oh {
                    for xj in 0..ow {
                        let mut acc = bv.data()[oi];
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let xi = xd[idx4(bi, ci, y * stride + ky, xj * stride + kx, c, h, wd)];
                                    let wi = wdv[idx4(oi, ci, ky, kx, c, kh, kw)];
                                    acc += xi * wi;
                                }
                            }
                        }
                        od[idx4(bi, oi, y, xj, o, oh, ow)] = acc;
                    }
                }
            }
        }
        self.push(out, Op::Conv2d { x: x.0, w: w.0, b: b.0, stride })
    }

    /// Non-overlapping max pooling with window = stride = `size`.
    pub fn max_pool2d(&mut self, x: Var, size: usize) -> Var {
        assert!(size >= 1);
        let xv = &self.nodes[x.0].value;
        let (bs, c, h, w) = dims4(xv.shape());
        let (oh, ow) = (h / size, w / size);
        assert!(oh >= 1 && ow >= 1, "pool window larger than input");
        let mut out = Tensor::zeros(&[bs, c, oh, ow]);
        let xd = xv.data();
        let od = out.data_mut();
        for bi in 0..bs {
            for ci in 0..c {
                for y in 0..oh {
                    for xj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..size {
                            for kx in 0..size {
                                let v = xd[idx4(bi, ci, y * size + ky, xj * size + kx, c, h, w)];
                                best = best.max(v);
                            }
                        }
                        od[idx4(bi, ci, y, xj, c, oh, ow)] = best;
                    }
                }
            }
        }
        self.push(out, Op::MaxPool2d { x: x.0, size })
    }

    // -------------------------------------------------------------- backward

    fn accum(grads: &mut [Option<Tensor>], values: &[Node], id: usize, delta: &Tensor) {
        let slot = &mut grads[id];
        match slot {
            Some(g) => g.axpy(1.0, delta),
            None => {
                let mut g = Tensor::zeros(values[id].value.shape());
                // delta may carry a different (reshaped) shape; volumes match.
                assert_eq!(g.len(), delta.len(), "gradient volume mismatch");
                for (gd, &dd) in g.data_mut().iter_mut().zip(delta.data()) {
                    *gd += dd;
                }
                *slot = Some(g);
            }
        }
    }

    /// Backpropagate from a scalar `loss` node, filling gradients for every
    /// node that influences it.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "backward needs a scalar loss");
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for id in (0..n).rev() {
            let Some(gout) = grads[id].take() else { continue };
            // Re-stash: callers may query any node's grad afterwards.
            let op = self.nodes[id].op.clone();
            match op {
                Op::Leaf { .. } => {}
                Op::MatMul(a, b) => {
                    let gout2 = gout.reshaped(self.nodes[id].value.shape());
                    let da = gout2.matmul(&self.nodes[b].value.transposed());
                    let db = self.nodes[a].value.transposed().matmul(&gout2);
                    Self::accum(&mut grads, &self.nodes, a, &da);
                    Self::accum(&mut grads, &self.nodes, b, &db);
                }
                Op::AddBias(a, bias) => {
                    Self::accum(&mut grads, &self.nodes, a, &gout);
                    let g2 = gout.reshaped(self.nodes[a].value.shape());
                    let (m, ncol) = (g2.rows(), g2.cols());
                    let mut db = Tensor::zeros(&[ncol]);
                    for i in 0..m {
                        for j in 0..ncol {
                            db.data_mut()[j] += g2.at(i, j);
                        }
                    }
                    Self::accum(&mut grads, &self.nodes, bias, &db);
                }
                Op::Add(a, b) => {
                    Self::accum(&mut grads, &self.nodes, a, &gout);
                    Self::accum(&mut grads, &self.nodes, b, &gout);
                }
                Op::Sub(a, b) => {
                    Self::accum(&mut grads, &self.nodes, a, &gout);
                    let neg = gout.map(|x| -x);
                    Self::accum(&mut grads, &self.nodes, b, &neg);
                }
                Op::Mul(a, b) => {
                    let da = ew(&gout, &self.nodes[b].value, |g, y| g * y);
                    let db = ew(&gout, &self.nodes[a].value, |g, x| g * x);
                    Self::accum(&mut grads, &self.nodes, a, &da);
                    Self::accum(&mut grads, &self.nodes, b, &db);
                }
                Op::MinElem(a, b) => {
                    let av = &self.nodes[a].value;
                    let bv = &self.nodes[b].value;
                    let mut da = Tensor::zeros(av.shape());
                    let mut db = Tensor::zeros(bv.shape());
                    for i in 0..gout.len() {
                        if av.data()[i] <= bv.data()[i] {
                            da.data_mut()[i] = gout.data()[i];
                        } else {
                            db.data_mut()[i] = gout.data()[i];
                        }
                    }
                    Self::accum(&mut grads, &self.nodes, a, &da);
                    Self::accum(&mut grads, &self.nodes, b, &db);
                }
                Op::Scale(a, c) => {
                    let da = gout.map(|x| x * c);
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::AddScalar(a) => {
                    Self::accum(&mut grads, &self.nodes, a, &gout);
                }
                Op::Relu(a) => {
                    let da = ew(&gout, &self.nodes[a].value, |g, x| if x > 0.0 { g } else { 0.0 });
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Tanh(a) => {
                    let da = ew(&gout, &self.nodes[id].value, |g, y| g * (1.0 - y * y));
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Sigmoid(a) => {
                    let da = ew(&gout, &self.nodes[id].value, |g, y| g * y * (1.0 - y));
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Exp(a) => {
                    let da = ew(&gout, &self.nodes[id].value, |g, y| g * y);
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Clamp(a, lo, hi) => {
                    let da = ew(&gout, &self.nodes[a].value, |g, x| {
                        if x > lo && x < hi {
                            g
                        } else {
                            0.0
                        }
                    });
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::LogSoftmax(a) => {
                    // dx = dy - softmax(x) * rowsum(dy)
                    let y = &self.nodes[id].value;
                    let (m, ncol) = (y.rows(), y.cols());
                    let g2 = gout.reshaped(&[m, ncol]);
                    let mut da = Tensor::zeros(&[m, ncol]);
                    for i in 0..m {
                        let row_sum: f32 = (0..ncol).map(|j| g2.at(i, j)).sum();
                        for j in 0..ncol {
                            *da.at_mut(i, j) = g2.at(i, j) - y.at(i, j).exp() * row_sum;
                        }
                    }
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::SelectCols(a, idx) => {
                    let av = &self.nodes[a].value;
                    let mut da = Tensor::zeros(av.shape());
                    let ncol = av.cols();
                    for (i, &j) in idx.iter().enumerate() {
                        da.data_mut()[i * ncol + j] += gout.data()[i];
                    }
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::SumRows(a) => {
                    let av = &self.nodes[a].value;
                    let (m, ncol) = (av.rows(), av.cols());
                    let mut da = Tensor::zeros(&[m, ncol]);
                    for i in 0..m {
                        for j in 0..ncol {
                            *da.at_mut(i, j) = gout.data()[i];
                        }
                    }
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Mean(a) => {
                    let len = self.nodes[a].value.len() as f32;
                    let g = gout.item() / len;
                    let da = Tensor::full(self.nodes[a].value.shape(), g);
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Sum(a) => {
                    let da = Tensor::full(self.nodes[a].value.shape(), gout.item());
                    Self::accum(&mut grads, &self.nodes, a, &da);
                }
                Op::Reshape(a) => {
                    Self::accum(&mut grads, &self.nodes, a, &gout);
                }
                Op::Conv2d { x, w, b, stride } => {
                    let xv = &self.nodes[x].value;
                    let wv = &self.nodes[w].value;
                    let (bs, c, h, wd) = dims4(xv.shape());
                    let (o, _, kh, kw) = dims4(wv.shape());
                    let (_, _, oh, ow) = dims4(self.nodes[id].value.shape());
                    let mut dx = Tensor::zeros(xv.shape());
                    let mut dw = Tensor::zeros(wv.shape());
                    let mut db = Tensor::zeros(&[o]);
                    let gd = gout.data();
                    for bi in 0..bs {
                        for oi in 0..o {
                            for y in 0..oh {
                                for xj in 0..ow {
                                    let g = gd[idx4(bi, oi, y, xj, o, oh, ow)];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    db.data_mut()[oi] += g;
                                    for ci in 0..c {
                                        for ky in 0..kh {
                                            for kx in 0..kw {
                                                let xi = idx4(bi, ci, y * stride + ky, xj * stride + kx, c, h, wd);
                                                let wi = idx4(oi, ci, ky, kx, c, kh, kw);
                                                dx.data_mut()[xi] += g * wv.data()[wi];
                                                dw.data_mut()[wi] += g * xv.data()[xi];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Self::accum(&mut grads, &self.nodes, x, &dx);
                    Self::accum(&mut grads, &self.nodes, w, &dw);
                    Self::accum(&mut grads, &self.nodes, b, &db);
                }
                Op::MaxPool2d { x, size } => {
                    let xv = &self.nodes[x].value;
                    let (bs, c, h, w) = dims4(xv.shape());
                    let (_, _, oh, ow) = dims4(self.nodes[id].value.shape());
                    let mut dx = Tensor::zeros(xv.shape());
                    let gd = gout.data();
                    let xd = xv.data();
                    for bi in 0..bs {
                        for ci in 0..c {
                            for y in 0..oh {
                                for xj in 0..ow {
                                    // Recompute the argmax; first maximum
                                    // wins on ties (deterministic).
                                    let mut best = f32::NEG_INFINITY;
                                    let mut best_i = 0;
                                    for ky in 0..size {
                                        for kx in 0..size {
                                            let i = idx4(bi, ci, y * size + ky, xj * size + kx, c, h, w);
                                            if xd[i] > best {
                                                best = xd[i];
                                                best_i = i;
                                            }
                                        }
                                    }
                                    dx.data_mut()[best_i] += gd[idx4(bi, ci, y, xj, c, oh, ow)];
                                }
                            }
                        }
                    }
                    Self::accum(&mut grads, &self.nodes, x, &dx);
                }
            }
            grads[id] = Some(gout);
        }

        for (node, g) in self.nodes.iter_mut().zip(grads) {
            node.grad = g;
        }
    }
}

/// Elementwise combine of `g` and `x` with volumes (not necessarily shapes,
/// reshape nodes pass through) matching.
fn ew(g: &Tensor, x: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(g.len(), x.len());
    let data = g.data().iter().zip(x.data()).map(|(&a, &b)| f(a, b)).collect();
    Tensor::from_vec(data, x.shape())
}

fn dims4(shape: &[usize]) -> (usize, usize, usize, usize) {
    assert_eq!(shape.len(), 4, "expected a 4-D tensor, got {shape:?}");
    (shape[0], shape[1], shape[2], shape[3])
}

#[inline]
fn idx4(a: usize, b: usize, c: usize, d: usize, nb: usize, nc: usize, nd: usize) -> usize {
    ((a * nb + b) * nc + c) * nd + d
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d loss / d input` for every
    /// element of the chosen leaf.
    fn gradcheck<F>(input: Tensor, build: F, tol: f32)
    where
        F: Fn(&mut Graph, Var) -> Var,
    {
        let mut g = Graph::new();
        let x = g.param(input.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x);

        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.param(t);
                let l = build(&mut g, x);
                g.value(l).item()
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn demo_input() -> Tensor {
        Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9], &[2, 3])
    }

    #[test]
    fn gradcheck_matmul_bias_relu_mean() {
        let w = Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]);
        let b = Tensor::from_vec(vec![0.1, -0.1], &[2]);
        gradcheck(
            demo_input(),
            move |g, x| {
                let wv = g.input(w.clone());
                let bv = g.input(b.clone());
                let h = g.matmul(x, wv);
                let h = g.add_bias(h, bv);
                let h = g.relu(h);
                g.mean(h)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_matmul_weight_side() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.05, -1.4, 0.9], &[2, 3]);
        gradcheck(
            Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.7, -0.3, 0.4], &[3, 2]),
            move |g, w| {
                let xv = g.input(x.clone());
                let h = g.matmul(xv, w);
                let h = g.tanh(h);
                g.mean(h)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_tanh_sigmoid_exp() {
        gradcheck(
            demo_input(),
            |g, x| {
                let a = g.tanh(x);
                let b = g.sigmoid(a);
                let c = g.exp(b);
                g.mean(c)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_log_softmax_select() {
        gradcheck(
            demo_input(),
            |g, x| {
                let ls = g.log_softmax(x);
                let picked = g.select_cols(ls, &[2, 0]);
                g.mean(picked)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_clamp_min_mul() {
        let other = Tensor::from_vec(vec![0.2, -0.3, 0.8, -0.9, 0.4, 1.1], &[2, 3]);
        gradcheck(
            demo_input(),
            move |g, x| {
                let o = g.input(other.clone());
                let c = g.clamp(x, -1.0, 1.0);
                let m = g.min_elem(c, o);
                let p = g.mul(m, o);
                g.mean(p)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_sum_rows_and_arith() {
        gradcheck(
            demo_input(),
            |g, x| {
                let s = g.scale(x, 1.7);
                let s = g.add_scalar(s, 0.3);
                let r = g.sum_rows(s);
                let sq = g.mul(r, r);
                g.sum(sq)
            },
            5e-2,
        );
    }

    #[test]
    fn gradcheck_sub_add() {
        let other = Tensor::from_vec(vec![0.2, -0.3, 0.8, -0.9, 0.4, 1.1], &[2, 3]);
        gradcheck(
            demo_input(),
            move |g, x| {
                let o = g.input(other.clone());
                let d = g.sub(x, o);
                let e = g.add(d, x);
                let f = g.mul(e, e);
                g.mean(f)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_reshape_pipeline() {
        gradcheck(
            demo_input(),
            |g, x| {
                let r = g.reshape(x, &[3, 2]);
                let t = g.tanh(r);
                g.mean(t)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_conv_and_pool() {
        // 1 batch, 1 channel, 4x4 input; 1 output channel, 2x2 kernel.
        let x = Tensor::from_vec(
            (0..16).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[1, 1, 4, 4],
        );
        gradcheck(
            x,
            |g, xin| {
                let w = g.param(Tensor::from_vec(vec![0.4, -0.2, 0.3, 0.1], &[1, 1, 2, 2]));
                let b = g.param(Tensor::from_vec(vec![0.05], &[1]));
                let c = g.conv2d(xin, w, b, 1); // [1,1,3,3]
                let t = g.tanh(c);
                g.mean(t)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_conv_weights() {
        let x = Tensor::from_vec(
            (0..32).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.2).collect(),
            &[1, 2, 4, 4],
        );
        gradcheck(
            Tensor::from_vec(
                (0..16).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.1).collect(),
                &[2, 2, 2, 2],
            ),
            move |g, w| {
                let xin = g.input(x.clone());
                let b = g.input(Tensor::from_vec(vec![0.0, 0.1], &[2]));
                let c = g.conv2d(xin, w, b, 2); // [1,2,2,2]
                let p = g.max_pool2d(c, 2); // [1,2,1,1]
                let r = g.reshape(p, &[1, 2]);
                let s = g.sum_rows(r);
                g.sum(s)
            },
            2e-2,
        );
    }

    #[test]
    fn log_softmax_rows_are_normalized() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]));
        let ls = g.log_softmax(x);
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| g.value(ls).at(i, j).exp()).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn log_softmax_handles_extreme_logits() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1000.0, -1000.0, 0.0], &[1, 3]));
        let ls = g.log_softmax(x);
        assert!(g.value(ls).data().iter().all(|v| v.is_finite()));
        assert!((g.value(ls).at(0, 0)).abs() < 1e-5, "dominant logit has logprob ~0");
    }

    #[test]
    fn gradients_accumulate_over_reused_nodes() {
        // loss = mean(x * x): d/dx = 2x/len, uses x twice via Mul(a,a).
        let mut g = Graph::new();
        let x = g.param(Tensor::from_vec(vec![3.0, -2.0], &[2]));
        let sq = g.mul(x, x);
        let loss = g.mean(sq);
        g.backward(loss);
        let gr = g.grad(x);
        assert!((gr.data()[0] - 3.0).abs() < 1e-5);
        assert!((gr.data()[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn conv_output_shape_and_value() {
        // Uniform input, unit kernel: every output equals k*k*mean + bias.
        let mut g = Graph::new();
        let x = g.input(Tensor::full(&[1, 1, 4, 4], 2.0));
        let w = g.input(Tensor::full(&[1, 1, 2, 2], 1.0));
        let b = g.input(Tensor::from_vec(vec![0.5], &[1]));
        let c = g.conv2d(x, w, b, 2);
        assert_eq!(g.value(c).shape(), &[1, 1, 2, 2]);
        assert!(g.value(c).data().iter().all(|&v| (v - 8.5).abs() < 1e-6));
    }

    #[test]
    fn max_pool_takes_window_max() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            &[1, 1, 4, 4],
        ));
        let p = g.max_pool2d(x, 2);
        assert_eq!(g.value(p).data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[2, 2]));
        let y = g.relu(x);
        g.backward(y);
    }

    #[test]
    fn is_param_distinguishes_leaves() {
        let mut g = Graph::new();
        let p = g.param(Tensor::zeros(&[1]));
        let i = g.input(Tensor::zeros(&[1]));
        let s = g.add(p, i);
        assert!(g.is_param(p));
        assert!(!g.is_param(i));
        assert!(!g.is_param(s));
    }

    #[test]
    fn grad_of_untouched_node_is_zero() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(&[3]));
        let y = g.param(Tensor::from_vec(vec![1.0], &[1]));
        let loss = g.mean(y);
        g.backward(loss);
        assert_eq!(g.grad(x).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(g.grad(y).data(), &[1.0]);
    }
}
