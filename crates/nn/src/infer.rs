//! Allocation-free inference: plain forward passes over `&[f32]` scratch
//! buffers, with no tape bookkeeping at all.
//!
//! # Tape vs fast path
//!
//! The [`crate::Graph`] tape exists for *training*: every op records
//! itself so `backward` can run, every intermediate stays alive for the
//! reverse scan, and parameters are copied onto the tape each forward so
//! the optimizer can match gradients back to storage. None of that is
//! needed to *act*: scheduling decisions (RLScheduler §IV-B1's test path,
//! Table IX's latency comparison vs SJF) and rollout sampling only need
//! output values. This module touches no memory beyond a caller-owned
//! [`Scratch`] and, on x86-64 with AVX2+FMA (runtime-detected), runs
//! dense layers through a register-blocked FMA microkernel.
//!
//! Numerics: the SIMD kernel fuses multiply-adds and reorders the
//! accumulation, so outputs can differ from the tape in the last few
//! ulps; the portable fallback matches the tape's accumulation order
//! exactly. Either way the masked-argmax decision agrees with the tape
//! except on floating-point near-ties (see the `infer_parity` property
//! tests in `rlscheduler`).
//!
//! Use the tape when you will call `backward`; use `infer` everywhere
//! else. The PPO update keeps the tape (it needs gradients); action
//! selection in rollouts and greedy evaluation route through here.
//!
//! The functions are free-standing and layer-shaped (dense / conv /
//! pool / log-softmax) so downstream crates can compose them for any
//! architecture — see `rlscheduler`'s five `PolicyKind`s, which all score
//! a 128-job window through these in one batched pass.

use crate::layers::{Activation, Dense, Mlp};

/// Reusable scratch buffers for inference. One per worker/thread; cheap
/// to create, free to reuse. Buffers only ever grow to the high-water
/// mark of the architectures run through them.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    /// Ping buffer for layer outputs.
    a: Vec<f32>,
    /// Pong buffer for layer outputs.
    b: Vec<f32>,
    /// Extra buffer for architectures needing a third live tensor (conv
    /// stacks).
    c: Vec<f32>,
}

impl Scratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// True when the AVX2+FMA microkernel can run on this machine
/// (runtime-detected once, cached).
#[cfg(target_arch = "x86_64")]
fn simd_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

/// Register-blocked AVX2/FMA dense kernel: 4 rows × 8 columns per block,
/// weights loaded once per (k, tile) and four independent FMA chains to
/// hide latency (~25-30 MAC/ns vs ~3 for the scalar loop on the same
/// hardware). Requires `out_dim % 8 == 0`; `out` must be presized to
/// `rows * out_dim` (contents overwritten).
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available (see
/// [`simd_available`]) and slice lengths match the dims.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dense_avx2(
    x: &[f32],
    rows: usize,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(out_dim % 8, 0);
    assert!(x.len() >= rows * in_dim && w.len() >= in_dim * out_dim);
    assert!(b.len() >= out_dim && out.len() >= rows * out_dim);
    unsafe {
        let mut i = 0;
        while i + 4 <= rows {
            let mut j = 0;
            while j < out_dim {
                let bj = _mm256_loadu_ps(b.as_ptr().add(j));
                let (mut a0, mut a1, mut a2, mut a3) = (bj, bj, bj, bj);
                for k in 0..in_dim {
                    let wr = _mm256_loadu_ps(w.as_ptr().add(k * out_dim + j));
                    a0 = _mm256_fmadd_ps(_mm256_set1_ps(*x.get_unchecked(i * in_dim + k)), wr, a0);
                    a1 = _mm256_fmadd_ps(
                        _mm256_set1_ps(*x.get_unchecked((i + 1) * in_dim + k)),
                        wr,
                        a1,
                    );
                    a2 = _mm256_fmadd_ps(
                        _mm256_set1_ps(*x.get_unchecked((i + 2) * in_dim + k)),
                        wr,
                        a2,
                    );
                    a3 = _mm256_fmadd_ps(
                        _mm256_set1_ps(*x.get_unchecked((i + 3) * in_dim + k)),
                        wr,
                        a3,
                    );
                }
                _mm256_storeu_ps(out.as_mut_ptr().add(i * out_dim + j), a0);
                _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * out_dim + j), a1);
                _mm256_storeu_ps(out.as_mut_ptr().add((i + 2) * out_dim + j), a2);
                _mm256_storeu_ps(out.as_mut_ptr().add((i + 3) * out_dim + j), a3);
                j += 8;
            }
            i += 4;
        }
        // Row remainder: single-row 8-wide blocks with four k-interleaved
        // accumulators (a single FMA chain would be latency-bound on long
        // inputs like the flat-MLP's 896-wide observation).
        while i < rows {
            let mut j = 0;
            while j < out_dim {
                let mut acc0 = _mm256_loadu_ps(b.as_ptr().add(j));
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let mut k = 0;
                while k + 4 <= in_dim {
                    let x0 = _mm256_set1_ps(*x.get_unchecked(i * in_dim + k));
                    let x1 = _mm256_set1_ps(*x.get_unchecked(i * in_dim + k + 1));
                    let x2 = _mm256_set1_ps(*x.get_unchecked(i * in_dim + k + 2));
                    let x3 = _mm256_set1_ps(*x.get_unchecked(i * in_dim + k + 3));
                    acc0 =
                        _mm256_fmadd_ps(x0, _mm256_loadu_ps(w.as_ptr().add(k * out_dim + j)), acc0);
                    acc1 = _mm256_fmadd_ps(
                        x1,
                        _mm256_loadu_ps(w.as_ptr().add((k + 1) * out_dim + j)),
                        acc1,
                    );
                    acc2 = _mm256_fmadd_ps(
                        x2,
                        _mm256_loadu_ps(w.as_ptr().add((k + 2) * out_dim + j)),
                        acc2,
                    );
                    acc3 = _mm256_fmadd_ps(
                        x3,
                        _mm256_loadu_ps(w.as_ptr().add((k + 3) * out_dim + j)),
                        acc3,
                    );
                    k += 4;
                }
                while k < in_dim {
                    let wr = _mm256_loadu_ps(w.as_ptr().add(k * out_dim + j));
                    acc0 =
                        _mm256_fmadd_ps(_mm256_set1_ps(*x.get_unchecked(i * in_dim + k)), wr, acc0);
                    k += 1;
                }
                let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
                _mm256_storeu_ps(out.as_mut_ptr().add(i * out_dim + j), acc);
                j += 8;
            }
            i += 1;
        }
    }
}

/// Portable dense kernel: bias-seeded rows, k ascending. This is the
/// *same function* [`crate::Graph::linear`] computes its forward with,
/// so the fallback matches the tape bit-for-bit by construction.
pub(crate) fn dense_portable(
    x: &[f32],
    rows: usize,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    out: &mut [f32],
) {
    for i in 0..rows {
        let x_row = &x[i * in_dim..(i + 1) * in_dim];
        let o_row = &mut out[i * out_dim..(i + 1) * out_dim];
        o_row.copy_from_slice(b);
        for (k, &xa) in x_row.iter().enumerate() {
            let w_row = &w[k * out_dim..(k + 1) * out_dim];
            for (o, &wv) in o_row.iter_mut().zip(w_row) {
                *o += xa * wv;
            }
        }
    }
}

/// Dense layer forward: `out = act(x @ w + b)` where `x` is `[rows, in]`
/// row-major, `w` `[in, out_dim]`, `b` `[out_dim]`.
///
/// Dispatches to the AVX2/FMA microkernel when available and the width
/// allows (`out_dim % 8 == 0`); scalar-dot specialization for
/// `out_dim == 1` heads; portable tape-order kernel otherwise.
#[allow(clippy::too_many_arguments)] // mirrors the raw (x, w, b, dims) BLAS-style signature
pub fn dense_forward(
    x: &[f32],
    rows: usize,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    act: Activation,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(x.len(), rows * in_dim, "input volume");
    debug_assert_eq!(w.len(), in_dim * out_dim, "weight volume");
    debug_assert_eq!(b.len(), out_dim, "bias length");
    out.clear();
    out.resize(rows * out_dim, 0.0);
    if out_dim == 1 {
        // Scalar-head specialization: a dot product per row, vectorizable
        // over k with no strided weight access.
        for i in 0..rows {
            let x_row = &x[i * in_dim..(i + 1) * in_dim];
            let mut acc = b[0];
            for (&xa, &wv) in x_row.iter().zip(w) {
                acc += xa * wv;
            }
            out[i] = acc;
        }
    } else {
        #[cfg(target_arch = "x86_64")]
        let used_simd = if out_dim.is_multiple_of(8) && simd_available() {
            unsafe { dense_avx2(x, rows, w, b, in_dim, out_dim, out) };
            true
        } else {
            false
        };
        #[cfg(not(target_arch = "x86_64"))]
        let used_simd = false;
        if !used_simd {
            dense_portable(x, rows, w, b, in_dim, out_dim, out);
        }
    }
    act.to_act().apply_slice(out);
}

/// Forward an [`Mlp`] over `rows` stacked input rows; the final layer's
/// activations land in `out` (`[rows, mlp.out_dim()]`).
pub fn mlp_forward(mlp: &Mlp, x: &[f32], rows: usize, scratch: &mut Scratch, out: &mut Vec<f32>) {
    // Invariant: after layer i < last, its activations live in `scratch.a`.
    let last = mlp.layers.len() - 1;
    for (i, layer) in mlp.layers.iter().enumerate() {
        let act = if i == last { mlp.output } else { mlp.hidden };
        let (w, b) = (layer.w.data(), layer.b.data());
        let (din, dout) = (layer.in_dim(), layer.out_dim());
        if i == 0 {
            let dst = if last == 0 { &mut *out } else { &mut scratch.a };
            dense_forward(x, rows, w, b, din, dout, act, dst);
        } else if i == last {
            dense_forward(&scratch.a, rows, w, b, din, dout, act, out);
        } else {
            let Scratch { a, b: pong, .. } = scratch;
            dense_forward(a, rows, w, b, din, dout, act, pong);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
    }
}

/// Single-dense-layer convenience over a [`Dense`].
pub fn dense_layer_forward(
    layer: &Dense,
    x: &[f32],
    rows: usize,
    act: Activation,
    out: &mut Vec<f32>,
) {
    dense_forward(
        x,
        rows,
        layer.w.data(),
        layer.b.data(),
        layer.in_dim(),
        layer.out_dim(),
        act,
        out,
    );
}

/// Valid (unpadded) conv2d into a zero-filled output slice. Shared by the
/// tape op and the fast path so both compute identical values.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    wd: usize,
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    out: &mut [f32],
) {
    let oh = (h - kh) / stride + 1;
    let ow = (wd - kw) / stride + 1;
    debug_assert_eq!(out.len(), bs * o * oh * ow);
    for bi in 0..bs {
        for oi in 0..o {
            for y in 0..oh {
                for xj in 0..ow {
                    let mut acc = b[oi];
                    for ci in 0..c {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let xi =
                                    x[idx4(bi, ci, y * stride + ky, xj * stride + kx, c, h, wd)];
                                let wi = w[idx4(oi, ci, ky, kx, c, kh, kw)];
                                acc += xi * wi;
                            }
                        }
                    }
                    out[idx4(bi, oi, y, xj, o, oh, ow)] = acc;
                }
            }
        }
    }
}

/// Non-overlapping max-pool into an output slice (window = stride =
/// `size`). Shared by the tape op and the fast path.
pub fn max_pool2d_into(
    x: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    w: usize,
    size: usize,
    out: &mut [f32],
) {
    let (oh, ow) = (h / size, w / size);
    debug_assert_eq!(out.len(), bs * c * oh * ow);
    for bi in 0..bs {
        for ci in 0..c {
            for y in 0..oh {
                for xj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..size {
                        for kx in 0..size {
                            let v = x[idx4(bi, ci, y * size + ky, xj * size + kx, c, h, w)];
                            best = best.max(v);
                        }
                    }
                    out[idx4(bi, ci, y, xj, c, oh, ow)] = best;
                }
            }
        }
    }
}

/// Scratch-buffered conv2d: resizes `out` and runs [`conv2d_into`].
/// Returns the output spatial dims `(oh, ow)`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    x: &[f32],
    w: &[f32],
    b: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    wd: usize,
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let oh = (h - kh) / stride + 1;
    let ow = (wd - kw) / stride + 1;
    out.clear();
    out.resize(bs * o * oh * ow, 0.0);
    conv2d_into(x, w, b, bs, c, h, wd, o, kh, kw, stride, out);
    (oh, ow)
}

/// Scratch-buffered max-pool. Returns the output spatial dims.
pub fn max_pool2d_forward(
    x: &[f32],
    bs: usize,
    c: usize,
    h: usize,
    w: usize,
    size: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    let (oh, ow) = (h / size, w / size);
    out.clear();
    out.resize(bs * c * oh * ow, 0.0);
    max_pool2d_into(x, bs, c, h, w, size, out);
    (oh, ow)
}

/// ReLU in place (for conv stacks composed manually).
pub fn relu_inplace(xs: &mut [f32]) {
    for x in xs {
        *x = x.max(0.0);
    }
}

/// Numerically-stabilized log-softmax of one row, in place. Matches the
/// tape's [`crate::Graph::log_softmax`] arithmetic exactly.
pub fn log_softmax_inplace(row: &mut [f32]) {
    let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = mx + row.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln();
    for x in row {
        *x -= lse;
    }
}

/// The third scratch buffer, for conv stacks that need one more live
/// tensor than the ping/pong pair provides.
pub fn scratch_extra(scratch: &mut Scratch) -> &mut Vec<f32> {
    &mut scratch.c
}

/// Borrow all three scratch buffers at once (conv pipelines rotate
/// through them).
pub fn scratch_triple(scratch: &mut Scratch) -> (&mut Vec<f32>, &mut Vec<f32>, &mut Vec<f32>) {
    (&mut scratch.a, &mut scratch.b, &mut scratch.c)
}

/// Row-major 4-D index, shared by the conv/pool forward kernels here and
/// their backward passes in [`crate::graph`] so layouts cannot diverge.
#[inline]
pub(crate) fn idx4(
    a: usize,
    b: usize,
    c: usize,
    d: usize,
    nb: usize,
    nc: usize,
    nd: usize,
) -> usize {
    ((a * nb + b) * nc + c) * nd + d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::layers::{Activation, Mlp, Network, ParamBinds};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_fast_path_matches_tape() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &[7, 32, 16, 8, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let rows = 128;
        let x: Vec<f32> = (0..rows * 7)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.02)
            .collect();

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let xin = g.input(Tensor::from_vec(x.clone(), &[rows, 7]));
        let y = mlp.forward(&mut g, xin, &mut binds);
        let tape_out = g.value(y).data().to_vec();

        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        mlp_forward(&mlp, &x, rows, &mut scratch, &mut out);
        assert_eq!(out.len(), tape_out.len());
        // The SIMD microkernel fuses multiply-adds, so allow ulp-scale
        // drift; the portable fallback is exactly the tape's order.
        for (a, b) in out.iter().zip(&tape_out) {
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn portable_kernel_matches_tape_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(
            &[5, 16, 4],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let rows = 6;
        let x: Vec<f32> = (0..rows * 5)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) * 0.05)
            .collect();

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let xin = g.input(Tensor::from_vec(x.clone(), &[rows, 5]));
        let y = mlp.forward(&mut g, xin, &mut binds);

        // Drive the portable path directly (out_dim 4 is not a SIMD width).
        let mut h = vec![0.0f32; rows * 16];
        super::dense_portable(
            &x,
            rows,
            mlp.layers[0].w.data(),
            mlp.layers[0].b.data(),
            5,
            16,
            &mut h,
        );
        Activation::Tanh.to_act().apply_slice(&mut h);
        let mut out = vec![0.0f32; rows * 4];
        super::dense_portable(
            &h,
            rows,
            mlp.layers[1].w.data(),
            mlp.layers[1].b.data(),
            16,
            4,
            &mut out,
        );
        assert_eq!(
            out.as_slice(),
            g.value(y).data(),
            "portable kernel is tape-order exact"
        );
    }

    #[test]
    fn dense_forward_applies_activation() {
        // x=[1,2], w=I, b=[-5, 0] → pre = [-4, 2] → relu → [0, 2]
        let mut out = Vec::new();
        dense_forward(
            &[1.0, 2.0],
            1,
            &[1.0, 0.0, 0.0, 1.0],
            &[-5.0, 0.0],
            2,
            2,
            Activation::Relu,
            &mut out,
        );
        assert_eq!(out, vec![0.0, 2.0]);
    }

    #[test]
    fn scratch_buffers_are_reused_not_regrown() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(
            &[4, 16, 16, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let x = vec![0.25f32; 4];
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        mlp_forward(&mlp, &x, 1, &mut scratch, &mut out);
        let cap_a = scratch.a.capacity();
        let cap_b = scratch.b.capacity();
        for _ in 0..100 {
            mlp_forward(&mlp, &x, 1, &mut scratch, &mut out);
        }
        assert_eq!(scratch.a.capacity(), cap_a, "ping buffer must not regrow");
        assert_eq!(scratch.b.capacity(), cap_b, "pong buffer must not regrow");
    }

    #[test]
    fn log_softmax_inplace_matches_tape() {
        let logits = vec![1.5f32, -0.5, 3.0, 0.0];
        let mut fast = logits.clone();
        log_softmax_inplace(&mut fast);

        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(logits, &[1, 4]));
        let ls = g.log_softmax(x);
        assert_eq!(fast.as_slice(), g.value(ls).data());
    }

    #[test]
    fn conv_and_pool_match_tape() {
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.7).sin()).collect();
        let w: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        let b = vec![0.1f32, -0.2];

        let mut g = Graph::new();
        let xv = g.input(Tensor::from_vec(x.clone(), &[1, 2, 4, 4]));
        let wv = g.input(Tensor::from_vec(w.clone(), &[2, 2, 2, 2]));
        let bv = g.input(Tensor::from_vec(b.clone(), &[2]));
        let c = g.conv2d(xv, wv, bv, 1); // [1,2,3,3]
        let p = g.max_pool2d(c, 3); // [1,2,1,1]

        let mut conv_out = Vec::new();
        let (oh, ow) = conv2d_forward(&x, &w, &b, 1, 2, 4, 4, 2, 2, 2, 1, &mut conv_out);
        assert_eq!((oh, ow), (3, 3));
        assert_eq!(conv_out.as_slice(), g.value(c).data());

        let mut pool_out = Vec::new();
        max_pool2d_forward(&conv_out, 1, 2, 3, 3, 3, &mut pool_out);
        assert_eq!(pool_out.as_slice(), g.value(p).data());
    }
}
