//! Minimal deep-learning substrate for the RLScheduler reproduction.
//!
//! The paper implements its networks in TensorFlow; no equivalent is
//! available offline in Rust, and the models are tiny (the kernel policy
//! network stays under 1 000 parameters, §IV-B1), so this crate provides a
//! self-contained substrate:
//!
//! * [`Tensor`] — dense row-major `f32` tensors.
//! * [`Graph`] — tape-based reverse-mode autodiff (define-by-run, arena
//!   tape, single reverse scan). The op set covers the dense nets of
//!   Figs 5–6, the LeNet CNN baseline of Table IV (`conv2d`,
//!   `max_pool2d`), and the PPO objective (`log_softmax`, `select_cols`,
//!   `clamp`, `min_elem`).
//! * [`layers`] — `Dense`, `Mlp`, `Conv2dLayer`, the [`Network`] trait and
//!   parameter-binding machinery.
//! * [`simd`] — runtime-dispatched AVX2/FMA dense microkernels shared by
//!   the tape, its backward passes, and the inference fast path.
//! * [`fused`] — hand-written, allocation-free forward+backward for the
//!   PPO objective over MLP-chain policies (bit-identical to the tape;
//!   the training-side sibling of [`infer`]).
//! * [`optim`] — Adam / SGD / global-norm clipping (SIMD-dispatched
//!   fused m/v/param step).
//! * [`serialize`] — JSON checkpoints for the Table VII transfer study.
//!
//! Gradient correctness is enforced by finite-difference tests on every op
//! (see `graph::tests` and `tests/gradcheck_prop.rs`).

pub mod fused;
pub mod graph;
pub mod infer;
pub mod layers;
pub mod optim;
pub mod serialize;
pub mod simd;
pub mod tensor;

pub use graph::{Act, Graph, Var};
pub use infer::{PackedMlp, Scratch};
pub use layers::{Activation, Conv2dLayer, Dense, Mlp, Network, ParamBinds};
pub use optim::{clip_global_norm, Adam, Sgd};
pub use tensor::Tensor;

// Serving tiers replicate weight snapshots across shard threads
// (`Arc<PackedMlp>` / cloned `Mlp`s) and keep one `Scratch` per worker.
// Everything here is plain owned `Vec<f32>` data — no interior
// mutability, no thread affinity — and these compile-time bounds keep it
// that way: adding an `Rc`/`Cell` field anywhere below now fails to
// build instead of failing at a server's spawn site.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Tensor>();
    assert_send_sync::<Dense>();
    assert_send_sync::<Conv2dLayer>();
    assert_send_sync::<Mlp>();
    assert_send_sync::<PackedMlp>();
    assert_send_sync::<Scratch>();
};
