//! Serving throughput: coalesced batched scoring through the serve
//! tier's `ShardEngine` versus request-at-a-time scoring (the
//! `as_policy` single-decision loop a non-coalescing server would
//! run), at concurrency ∈ {1, 8, 32}.
//!
//! Each measured iteration scores `c` concurrent requests, so dividing
//! `median_ns` by `c` gives ns/decision. The expectation from the
//! decision-latency work: the flat MLPs win big from coalescing (their
//! weight stream is the cost, and one stacked forward pays it once per
//! batch instead of once per request), while the kernel policy's
//! weights are L1-resident so its win is dispatch amortization only.
//! The criterion shim emits `BENCH_serving.json` (the file is named
//! after this bench target; engine ids live under
//! `serving_throughput/`, end-to-end wire arms under `serving_wire/`).

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_rl::{greedy_batch, ActorScratch, PpoConfig};
use rlsched_serve::{ListenAddr, ScorerSlot, ServeConfig, Server, ShardEngine, WireProtocol};
use rlsched_sim::MetricKind;
use rlscheduler::{
    Agent, AgentConfig, ObsConfig, PolicyKind, QueueSnapshot, SnapshotJob, JOB_FEATURES,
};

const MAX_OBSV: usize = 128;

fn agent(kind: PolicyKind) -> Agent {
    Agent::new(AgentConfig {
        policy: kind,
        obs: ObsConfig {
            max_obsv: MAX_OBSV,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig::default(),
        seed: 5,
    })
}

/// One pre-encoded request row (what a connection thread hands a shard).
struct Row {
    obs: Vec<f32>,
    mask: Vec<f32>,
    queue_len: usize,
}

/// Deterministic request rows from synthetic decision points of varying
/// queue depth — realistic masks, not all-live padding.
fn request_rows(agent: &Agent, n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let depth = 1 + (7 * i + 3) % MAX_OBSV;
            let snap = QueueSnapshot {
                free_procs: 16 + (i as u32 % 48),
                total_procs: 256,
                queue_len: depth as u32,
                jobs: (0..depth)
                    .map(|j| SnapshotJob {
                        wait: 30.0 * (1 + (i + j) % 100) as f64,
                        time_bound: 600.0 * (1 + (i * 13 + j * 7) % 200) as f64,
                        procs: 1 + ((i + 3 * j) % 64) as u32,
                        can_run_now: (i + j) % 3 != 0,
                    })
                    .collect(),
            };
            let mut obs = Vec::with_capacity(MAX_OBSV * JOB_FEATURES);
            let mut mask = Vec::with_capacity(MAX_OBSV);
            agent
                .encoder()
                .encode_snapshot_extend(&snap, &mut obs, &mut mask);
            Row {
                obs,
                mask,
                queue_len: depth,
            }
        })
        .collect()
}

fn bench_serving_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    for (label, kind) in [
        ("kernel", PolicyKind::Kernel),
        ("mlp_v1", PolicyKind::MlpV1),
    ] {
        let agent = agent(kind);
        let scorer = agent.scorer_snapshot();
        let rows = request_rows(&agent, 32);
        for &conc in &[1usize, 8, 32] {
            // Coalesced: the serve tier's path — stack `conc` requests,
            // one batched forward, clamped actions out.
            let slot = ScorerSlot::new(scorer.clone());
            let mut engine = ShardEngine::new(slot, conc);
            group.bench_function(format!("{label}/coalesced_c{conc}"), |b| {
                b.iter(|| {
                    for r in &rows[..conc] {
                        engine.push_row(&r.obs, &r.mask, r.queue_len);
                    }
                    criterion::black_box(engine.flush().len())
                })
            });

            // Request-at-a-time: the same scorer, one rows=1 forward per
            // request — what serving without a coalescer costs.
            let mut scratch = ActorScratch::new();
            let mut actions = Vec::new();
            group.bench_function(format!("{label}/request_at_a_time_c{conc}"), |b| {
                b.iter(|| {
                    let mut sum = 0usize;
                    for r in &rows[..conc] {
                        greedy_batch(&scorer, &r.obs, &r.mask, 1, &mut scratch, &mut actions);
                        sum += actions[0].min(r.queue_len - 1);
                    }
                    criterion::black_box(sum)
                })
            });
        }
    }
    group.finish();
}

/// Wire-protocol cost in isolation: a synchronous score_raw round trip
/// against a live 1-shard server with a tiny coalesce window, for every
/// {JSON, binary} × {TCP, UDS} cell. The scoring work is identical in
/// every cell (same kernel scorer, same row), so the spread between
/// arms is encode + transport + decode — the thing the binary format
/// and the UDS front door exist to shrink.
type ListenerArm = (&'static str, fn() -> ListenAddr);

fn bench_serving_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_wire");
    let agent = agent(PolicyKind::Kernel);
    let rows = request_rows(&agent, 4);
    let row = &rows[2]; // a mid-depth queue, not degenerate
    let listeners: Vec<ListenerArm> = vec![
        ("tcp", || ListenAddr::Tcp("127.0.0.1:0".into())),
        #[cfg(unix)]
        ("uds", || ListenAddr::unix_temp("serving-bench")),
    ];
    for (transport, listen) in listeners {
        for proto in [WireProtocol::Json, WireProtocol::Binary] {
            let handle = Server::spawn(
                agent.scorer_snapshot(),
                *agent.encoder(),
                ServeConfig {
                    shards: 1,
                    // A near-zero window: a lone synchronous client's
                    // latency is wire + one rows=1 forward, not waiting
                    // for batch-mates that never come.
                    coalesce_window: std::time::Duration::from_micros(5),
                    addr: listen(),
                    ..ServeConfig::default()
                },
            )
            .expect("server spawns");
            let mut client = handle
                .connect()
                .expect("client connects")
                .with_protocol(proto);
            group.bench_function(format!("{}_{transport}", proto.name()), |b| {
                b.iter(|| {
                    let d = client
                        .score_raw(&row.obs, &row.mask, row.queue_len)
                        .expect("round trip");
                    criterion::black_box(d.action)
                })
            });
            drop(client);
            handle.shutdown();
        }
    }
    group.finish();
}

fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {name = benches; config = short_config(); targets = bench_serving_throughput, bench_serving_wire}
criterion_main!(benches);
