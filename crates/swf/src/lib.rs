//! Standard Workload Format (SWF) substrate for the RLScheduler reproduction.
//!
//! The paper (Zhang et al., SC'20) drives both training and evaluation from
//! SWF job traces: real traces from the Parallel Workloads Archive and
//! synthetic traces from the Lublin–Feitelson model. This crate provides the
//! pieces every other crate builds on:
//!
//! * [`Job`] — the job record with the attributes of Table I of the paper
//!   (submit time, requested processors, requested time, user/group ids, …).
//! * [`parse`] / [`write`] — a lossless SWF v2.2 reader and writer, including
//!   header comment handling.
//! * [`JobTrace`] — an owned trace with slicing, windowing and random
//!   sequence-sampling used by the trainer and the evaluation harness.
//! * [`stats`] — the per-trace characteristics reported in Table II
//!   (processor count, mean interarrival, mean requested runtime, mean
//!   requested processors) plus per-user job counts used by the fairness
//!   experiments.

pub mod error;
pub mod job;
pub mod mmap;
pub mod parse;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod write;

pub use error::SwfError;
pub use job::{Job, JobStatus};
pub use mmap::{stream_mmap, MmapFile, MmapReader};
pub use parse::{parse_reader, parse_str, SwfHeader};
pub use stats::TraceStats;
pub use stream::StreamReader;
pub use trace::{JobTrace, SequenceSampler};
pub use write::{write_jobs, write_string, write_writer};
