//! `schedsim` — run any scheduler over any workload and report the paper's
//! metrics. The day-to-day CLI for users of this library.
//!
//! ```text
//! schedsim --workload lublin1 --jobs 2000 --sched sjf --backfill
//! schedsim --trace path/to/trace.swf --sched f1 --window 0:1024
//! schedsim --workload sdsc --jobs 3000 --sched all --seed 7
//! schedsim --workload lublin2 --jobs 2000 --model model.json   # trained RL agent
//! ```

use std::process::ExitCode;

use rlsched_sched::{HeuristicKind, PriorityScheduler};
use rlsched_sim::{run_episode, Policy, SimConfig};
use rlsched_swf::JobTrace;
use rlsched_workload::NamedWorkload;
use rlscheduler::Agent;

struct Args {
    trace_path: Option<String>,
    workload: Option<String>,
    jobs: usize,
    sched: String,
    model: Option<String>,
    backfill: bool,
    window: Option<(usize, usize)>,
    seed: u64,
}

const USAGE: &str = "usage: schedsim (--trace FILE.swf | --workload NAME) [--jobs N] \
(--sched fcfs|sjf|wfp3|unicep|f1|all | --model FILE.json) [--backfill] [--window START:LEN] [--seed N]\n\
workloads: lublin1 lublin2 sdsc hpc2n pik anl";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace_path: None,
        workload: None,
        jobs: 2000,
        sched: "all".to_string(),
        model: None,
        backfill: false,
        window: None,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--trace" => args.trace_path = Some(next("--trace")?),
            "--workload" => args.workload = Some(next("--workload")?),
            "--jobs" => {
                args.jobs = next("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--sched" => args.sched = next("--sched")?,
            "--model" => args.model = Some(next("--model")?),
            "--backfill" => args.backfill = true,
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--window" => {
                let v = next("--window")?;
                let (s, l) = v.split_once(':').ok_or("--window wants START:LEN")?;
                args.window = Some((
                    s.parse().map_err(|e| format!("--window start: {e}"))?,
                    l.parse().map_err(|e| format!("--window len: {e}"))?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if args.trace_path.is_none() && args.workload.is_none() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn load_trace(args: &Args) -> Result<JobTrace, String> {
    let trace = if let Some(path) = &args.trace_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        rlsched_swf::parse_str(&text).map_err(|e| format!("parsing {path}: {e}"))?
    } else {
        let name = args.workload.as_deref().expect("validated");
        let w =
            NamedWorkload::from_name(name).ok_or(format!("unknown workload {name}\n{USAGE}"))?;
        w.generate(args.jobs, args.seed)
    };
    match args.window {
        Some((start, len)) => trace.window(start, len).map_err(|e| e.to_string()),
        None => Ok(trace),
    }
}

fn report(name: &str, m: &rlsched_sim::EpisodeMetrics) {
    println!(
        "{:<10} bsld {:>10.2}   sld {:>10.2}   wait {:>9.0}s   resp {:>9.0}s   util {:>6.3}   makespan {:>9.0}s",
        name,
        m.avg_bounded_slowdown(),
        m.avg_slowdown(),
        m.avg_waiting_time(),
        m.avg_turnaround(),
        m.utilization(),
        m.makespan()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match load_trace(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let sim = if args.backfill {
        SimConfig::with_backfill()
    } else {
        SimConfig::no_backfill()
    };
    println!(
        "{} jobs on {} processors, backfilling {}",
        trace.len(),
        trace.max_procs(),
        if args.backfill { "EASY" } else { "off" }
    );

    if let Some(path) = &args.model {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let agent = match Agent::load_json(&json) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("loading model: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut policy = agent.as_policy();
        match run_episode(&trace, sim, &mut policy) {
            Ok(m) => report(policy.name(), &m),
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let kinds: Vec<HeuristicKind> = if args.sched == "all" {
        HeuristicKind::table3().to_vec()
    } else {
        match HeuristicKind::table3()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(&args.sched))
        {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown scheduler {}\n{USAGE}", args.sched);
                return ExitCode::FAILURE;
            }
        }
    };
    for kind in kinds {
        let mut sched = PriorityScheduler::new(kind);
        match run_episode(&trace, sim, &mut sched) {
            Ok(m) => report(sched.name(), &m),
            Err(e) => {
                eprintln!("simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
