//! The environment abstraction: a masked discrete-action episodic
//! environment, the SchedGym contract of §IV-D seen from the agent's side.
//!
//! Observations and masks flow through *caller-owned* buffers: `reset`
//! and `step` write into `&mut Vec<f32>`s the rollout worker reuses for
//! every step of every episode, so steady-state environment stepping
//! performs no heap allocation (the allocation-regression tests in
//! `rlsched-bench` pin this down).

/// Result of one environment step. The next observation and mask are
/// written into the buffers passed to [`Env::step`], not returned here.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Reward for the action just taken. In batch-job scheduling this is 0
    /// until the final action, which carries the whole episode metric
    /// (§IV-A of the paper).
    pub reward: f64,
    /// True when the episode just ended.
    pub done: bool,
    /// The episode's raw objective value (e.g. average bounded slowdown),
    /// reported once at `done` for logging/curves.
    pub episode_metric: Option<f64>,
}

/// A masked discrete-action episodic environment.
pub trait Env {
    /// Observation width (flattened).
    fn obs_dim(&self) -> usize;

    /// Action-space size (the paper's `MAX_OBSV_SIZE`, default 128).
    fn n_actions(&self) -> usize;

    /// Start a new episode derived from `seed` (the seed selects the job
    /// sequence; implementations must be reproducible). Writes the first
    /// observation (`obs_dim` long) and additive mask (`n_actions` long;
    /// 0 valid, very negative invalid) into the caller's buffers.
    fn reset(&mut self, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>);

    /// Apply an action, writing the next observation and mask into the
    /// caller's buffers (their contents are unspecified when the returned
    /// outcome has `done == true`). Implementations must not allocate at
    /// steady state.
    fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome;
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;

    /// A tiny bandit-style environment for substrate tests: `n_actions`
    /// arms, reward = arm index / n (higher arm, higher reward), episode
    /// length fixed. The optimal policy always picks the last arm; some
    /// arms are masked off to exercise masking.
    pub struct BanditEnv {
        pub n_actions: usize,
        pub episode_len: usize,
        pub t: usize,
        pub masked: Vec<usize>,
        pub acc: f64,
    }

    impl BanditEnv {
        pub fn new(n_actions: usize, episode_len: usize, masked: Vec<usize>) -> Self {
            BanditEnv {
                n_actions,
                episode_len,
                t: 0,
                masked,
                acc: 0.0,
            }
        }

        fn write_obs(&self, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
            obs.clear();
            obs.push(self.t as f32 / self.episode_len as f32);
            obs.push(1.0);
            mask.clear();
            mask.extend((0..self.n_actions).map(|i| {
                if self.masked.contains(&i) {
                    crate::categorical::MASK_OFF
                } else {
                    0.0
                }
            }));
        }
    }

    impl Env for BanditEnv {
        fn obs_dim(&self) -> usize {
            2
        }
        fn n_actions(&self) -> usize {
            self.n_actions
        }
        fn reset(&mut self, _seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
            self.t = 0;
            self.acc = 0.0;
            self.write_obs(obs, mask);
        }
        fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome {
            assert!(!self.masked.contains(&action), "masked action selected");
            self.t += 1;
            self.acc += action as f64 / self.n_actions as f64;
            let done = self.t >= self.episode_len;
            if !done {
                self.write_obs(obs, mask);
            }
            StepOutcome {
                reward: if done { self.acc } else { 0.0 },
                done,
                episode_metric: if done { Some(self.acc) } else { None },
            }
        }
    }
}
