//! The RLScheduler networks.
//!
//! * [`KernelPolicy`] — the paper's contribution (Fig 5): a small shared
//!   MLP applied to every job vector independently ("like a window"),
//!   producing one score per job, followed by a masked softmax. Because
//!   the same weights score every slot, the network is *order-equivariant*
//!   by construction: permuting job rows permutes the output distribution
//!   identically (§III-1).
//! * [`FlatMlpPolicy`] — the MLP v1/v2/v3 baselines of Table IV: a plain
//!   MLP over the flattened observation, order-sensitive.
//! * [`LeNetPolicy`] — the CNN baseline of Table IV ("2x(conv2d,
//!   maxpooling2d), dense"). Its pooling and dense layers mix job
//!   positions, which is exactly why the paper finds it converges worse.
//! * [`ValueNet`] — the critic (Fig 6): an MLP over the flattened
//!   observation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use rlsched_nn::fused::{FusedHead, FusedPolicy};
use rlsched_nn::infer;
use rlsched_nn::{
    Activation, Conv2dLayer, Dense, Graph, Mlp, Network, PackedMlp, ParamBinds, Scratch, Tensor,
    Var,
};
use rlsched_rl::{BatchPolicy, PolicyModel, ValueModel};

use crate::obs::JOB_FEATURES;

/// Shared tail of every policy's fast path: add the additive mask onto
/// the logits and log-softmax in place (same arithmetic as the tape's
/// `add` + `log_softmax`).
pub(crate) fn mask_and_log_softmax(out: &mut [f32], mask: &[f32]) {
    // Hard assert (the tape path panics on shape mismatch too): a short
    // mask must never silently leave padding logits unmasked.
    assert_eq!(out.len(), mask.len(), "mask length must equal logit width");
    for (o, &m) in out.iter_mut().zip(mask) {
        *o += m;
    }
    infer::log_softmax_inplace(out);
}

/// Row-wise [`mask_and_log_softmax`] over a `[rows, n]` logit matrix and
/// its stacked masks — the batched-scoring tail.
fn mask_and_log_softmax_rows(out: &mut [f32], masks: &[f32], rows: usize, n: usize) {
    assert_eq!(out.len(), rows * n, "logit matrix volume");
    assert_eq!(masks.len(), rows * n, "mask matrix volume");
    for (o_row, m_row) in out.chunks_mut(n).zip(masks.chunks(n)) {
        mask_and_log_softmax(o_row, m_row);
    }
}

/// The policy-network architectures of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The kernel-based network (the paper's design; hidden 32/16/8).
    Kernel,
    /// MLP with hidden layers 128/128/128.
    MlpV1,
    /// MLP with hidden layers 32/16/8.
    MlpV2,
    /// MLP with five hidden layers of 32.
    MlpV3,
    /// LeNet-style CNN.
    LeNet,
}

impl PolicyKind {
    /// All Table IV variants, kernel first.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Kernel,
            PolicyKind::MlpV1,
            PolicyKind::MlpV2,
            PolicyKind::MlpV3,
            PolicyKind::LeNet,
        ]
    }

    /// Display name as in Table IV.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Kernel => "RLScheduler",
            PolicyKind::MlpV1 => "MLP v1",
            PolicyKind::MlpV2 => "MLP v2",
            PolicyKind::MlpV3 => "MLP v3",
            PolicyKind::LeNet => "LeNet",
        }
    }
}

/// Batched kernel scoring processes this many views per dispatch (each
/// view contributes `max_obsv` job rows, so a block is ~a thousand rows
/// at the paper's K = 128). Tunable via `RLSCHED_KERNEL_VIEW_BLOCK` for
/// experiments (read once, cached); see
/// `KernelPolicy::log_probs_fast_batch` for why blocks beat one
/// monolithic stack.
const KERNEL_VIEW_BLOCK: usize = 8;

fn kernel_view_block() -> usize {
    static BLOCK: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BLOCK.get_or_init(|| {
        std::env::var("RLSCHED_KERNEL_VIEW_BLOCK")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(KERNEL_VIEW_BLOCK)
    })
}

/// The kernel-based policy network (Fig 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelPolicy {
    kernel: Mlp,
    max_obsv: usize,
}

impl KernelPolicy {
    /// Build with the paper's 32/16/8 kernel dimensions.
    pub fn new(max_obsv: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = Mlp::new(
            &[JOB_FEATURES, 32, 16, 8, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        KernelPolicy { kernel, max_obsv }
    }

    /// Observation window size.
    pub fn max_obsv(&self) -> usize {
        self.max_obsv
    }
}

impl PolicyModel for KernelPolicy {
    fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
        let batch = g.value(obs).rows();
        // Slide the kernel over the job axis: [batch, K*F] -> [batch*K, F],
        // shared-weight score per job, back to [batch, K].
        let per_job = g.reshape(obs, &[batch * self.max_obsv, JOB_FEATURES]);
        let scores = self.kernel.forward(g, per_job, binds);
        let logits = g.reshape(scores, &[batch, self.max_obsv]);
        let masked = g.add(logits, mask);
        g.log_softmax(masked)
    }

    fn log_probs_fast(&self, obs: &[f32], mask: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        // The whole job window is one batched matmul: the [K, F] job
        // matrix flows through the shared kernel in a single pass, so one
        // decision costs one MLP forward — not MAX_OBSV separate ones.
        infer::mlp_forward(&self.kernel, obs, self.max_obsv, scratch, out);
        mask_and_log_softmax(out, mask);
    }

    fn log_probs_fast_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        // All views' job windows stack into one [rows * K, F] matrix and
        // flow through the shared kernel batched — in blocks of
        // KERNEL_VIEW_BLOCK views. The kernel net's weights are
        // L1-resident (batching buys dispatch amortization, not weight
        // traffic), so what limits large stacks is the *intermediate
        // activation* working set (`rows * K` rows through every hidden
        // width); blocking keeps it cache-resident while still scoring
        // ~a thousand job rows per dispatch. Row-count invariance of the
        // dense kernels makes the blocking invisible: every row computes
        // the same bits at any block size.
        let chunk = kernel_view_block();
        let k = self.max_obsv;
        let obs_per_view = obs.len() / rows;
        out.clear();
        let mut tmp = std::mem::take(infer::scratch_extra(scratch));
        for start in (0..rows).step_by(chunk) {
            let n_views = chunk.min(rows - start);
            infer::mlp_forward(
                &self.kernel,
                &obs[start * obs_per_view..(start + n_views) * obs_per_view],
                n_views * k,
                scratch,
                &mut tmp,
            );
            out.extend_from_slice(&tmp);
        }
        *infer::scratch_extra(scratch) = tmp;
        mask_and_log_softmax_rows(out, masks, rows, self.max_obsv);
    }

    fn params(&self) -> Vec<&Tensor> {
        self.kernel.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.kernel.params_mut()
    }

    // Fused-update eligibility: the kernel head scores `[n·K, F]` job
    // rows through the shared MLP — exactly what `log_probs` builds on
    // the tape (the reshapes are views).
    fn fused(&self) -> Option<FusedPolicy<'_>> {
        Some(FusedPolicy {
            mlp: &self.kernel,
            head: FusedHead::Kernel {
                window: self.max_obsv,
            },
        })
    }

    fn fused_mut(&mut self) -> Option<&mut Mlp> {
        Some(&mut self.kernel)
    }
}

/// A flattened-observation MLP policy (MLP v1–v3 of Table IV).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatMlpPolicy {
    net: Mlp,
}

impl FlatMlpPolicy {
    /// Build with explicit hidden sizes.
    pub fn new(max_obsv: usize, hidden: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![max_obsv * JOB_FEATURES];
        dims.extend_from_slice(hidden);
        dims.push(max_obsv);
        FlatMlpPolicy {
            net: Mlp::new(&dims, Activation::Relu, Activation::Identity, &mut rng),
        }
    }

    /// A weight-transposed snapshot for the single-row serving path: the
    /// flat MLP streams its full weight matrix (≈458 KB for v1 at
    /// `max_obsv` 128) per decision, and the `[out, in]` layout reads it
    /// with full cache-line use. The pack does not track later weight
    /// updates — take it only while the policy is frozen.
    pub fn packed(&self) -> PackedMlp {
        PackedMlp::pack(&self.net)
    }
}

impl PolicyModel for FlatMlpPolicy {
    fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
        let logits = self.net.forward(g, obs, binds);
        let masked = g.add(logits, mask);
        g.log_softmax(masked)
    }

    fn log_probs_fast(&self, obs: &[f32], mask: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        infer::mlp_forward(&self.net, obs, 1, scratch, out);
        mask_and_log_softmax(out, mask);
    }

    fn log_probs_fast_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        // One forward over [rows, obs_dim]: the weight matrices stream
        // once for the whole batch instead of once per request.
        let n = self.net.out_dim();
        infer::mlp_forward(&self.net, obs, rows, scratch, out);
        mask_and_log_softmax_rows(out, masks, rows, n);
    }

    fn params(&self) -> Vec<&Tensor> {
        self.net.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.net.params_mut()
    }

    fn fused(&self) -> Option<FusedPolicy<'_>> {
        Some(FusedPolicy {
            mlp: &self.net,
            head: FusedHead::Flat,
        })
    }

    fn fused_mut(&mut self) -> Option<&mut Mlp> {
        Some(&mut self.net)
    }
}

/// The LeNet-style CNN policy of Table IV.
///
/// The flat observation reshapes to a near-square single-channel image
/// `[batch, 1, max_obsv/4, JOB_FEATURES*4]`, then LeNet's classic stack:
/// two (conv 5×5 → max-pool 2) stages, a dense hidden layer, and a dense
/// head over the `max_obsv` action slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeNetPolicy {
    conv1: Conv2dLayer,
    conv2: Conv2dLayer,
    fc1: Dense,
    fc2: Dense,
    max_obsv: usize,
    h: usize,
    w: usize,
}

impl LeNetPolicy {
    /// Build the CNN; `max_obsv` must be a multiple of 4 and at least 64
    /// so both conv/pool stages fit.
    pub fn new(max_obsv: usize, seed: u64) -> Self {
        assert!(
            max_obsv.is_multiple_of(4) && max_obsv >= 64,
            "LeNet needs max_obsv % 4 == 0 and >= 64"
        );
        let (h, w) = (max_obsv / 4, JOB_FEATURES * 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let conv1 = Conv2dLayer::new(1, 6, 5, 5, 1, &mut rng);
        let conv2 = Conv2dLayer::new(6, 16, 5, 5, 1, &mut rng);
        let (h1, w1) = ((h - 4) / 2, (w - 4) / 2); // conv1 + pool
        let (h2, w2) = ((h1 - 4) / 2, (w1 - 4) / 2); // conv2 + pool
        let flat = 16 * h2 * w2;
        let fc1 = Dense::new(flat, 120, &mut rng);
        let fc2 = Dense::new(120, max_obsv, &mut rng);
        LeNetPolicy {
            conv1,
            conv2,
            fc1,
            fc2,
            max_obsv,
            h,
            w,
        }
    }
}

impl PolicyModel for LeNetPolicy {
    fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
        let batch = g.value(obs).rows();
        let img = g.reshape(obs, &[batch, 1, self.h, self.w]);
        let c1 = self.conv1.forward(g, img, binds);
        let c1 = g.relu(c1);
        let p1 = g.max_pool2d(c1, 2);
        let c2 = self.conv2.forward(g, p1, binds);
        let c2 = g.relu(c2);
        let p2 = g.max_pool2d(c2, 2);
        let shape = g.value(p2).shape().to_vec();
        let flat = g.reshape(p2, &[batch, shape[1] * shape[2] * shape[3]]);
        let h = self.fc1.forward(g, flat, binds);
        let h = g.relu(h);
        let logits = self.fc2.forward(g, h, binds);
        let masked = g.add(logits, mask);
        g.log_softmax(masked)
    }

    fn log_probs_fast(&self, obs: &[f32], mask: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        let (buf_a, buf_b, buf_c) = infer::scratch_triple(scratch);
        // conv1 + relu + pool
        let c1 = &self.conv1;
        let (o1, kh1, kw1) = (c1.w.shape()[0], c1.w.shape()[2], c1.w.shape()[3]);
        let (h1c, w1c) = infer::conv2d_forward(
            obs,
            c1.w.data(),
            c1.b.data(),
            1,
            1,
            self.h,
            self.w,
            o1,
            kh1,
            kw1,
            c1.stride,
            buf_a,
        );
        infer::relu_inplace(buf_a);
        let (h1, w1) = infer::max_pool2d_forward(buf_a, 1, o1, h1c, w1c, 2, buf_b);
        // conv2 + relu + pool
        let c2 = &self.conv2;
        let (o2, kh2, kw2) = (c2.w.shape()[0], c2.w.shape()[2], c2.w.shape()[3]);
        let (h2c, w2c) = infer::conv2d_forward(
            buf_b,
            c2.w.data(),
            c2.b.data(),
            1,
            o1,
            h1,
            w1,
            o2,
            kh2,
            kw2,
            c2.stride,
            buf_c,
        );
        infer::relu_inplace(buf_c);
        infer::max_pool2d_forward(buf_c, 1, o2, h2c, w2c, 2, buf_a);
        // dense head
        infer::dense_layer_forward(&self.fc1, buf_a, 1, Activation::Relu, buf_b);
        infer::dense_layer_forward(&self.fc2, buf_b, 1, Activation::Identity, out);
        mask_and_log_softmax(out, mask);
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut p = vec![&self.conv1.w, &self.conv1.b, &self.conv2.w, &self.conv2.b];
        p.extend([&self.fc1.w, &self.fc1.b, &self.fc2.w, &self.fc2.b]);
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.conv1.w,
            &mut self.conv1.b,
            &mut self.conv2.w,
            &mut self.conv2.b,
            &mut self.fc1.w,
            &mut self.fc1.b,
            &mut self.fc2.w,
            &mut self.fc2.b,
        ]
    }
}

/// One policy of any Table IV architecture (enum dispatch keeps the PPO
/// agent monomorphic and serde-friendly).
#[allow(clippy::large_enum_variant)] // one instance per agent; boxing buys nothing
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyNet {
    /// Kernel-based (the paper's design).
    Kernel(KernelPolicy),
    /// Flat MLP (v1/v2/v3).
    Mlp(FlatMlpPolicy),
    /// LeNet CNN.
    LeNet(LeNetPolicy),
}

impl PolicyNet {
    /// Instantiate a Table IV architecture.
    pub fn build(kind: PolicyKind, max_obsv: usize, seed: u64) -> Self {
        match kind {
            PolicyKind::Kernel => PolicyNet::Kernel(KernelPolicy::new(max_obsv, seed)),
            PolicyKind::MlpV1 => {
                PolicyNet::Mlp(FlatMlpPolicy::new(max_obsv, &[128, 128, 128], seed))
            }
            PolicyKind::MlpV2 => PolicyNet::Mlp(FlatMlpPolicy::new(max_obsv, &[32, 16, 8], seed)),
            PolicyKind::MlpV3 => {
                PolicyNet::Mlp(FlatMlpPolicy::new(max_obsv, &[32, 32, 32, 32, 32], seed))
            }
            PolicyKind::LeNet => PolicyNet::LeNet(LeNetPolicy::new(max_obsv, seed)),
        }
    }

    /// Weight-transposed snapshot for the serving path, for the
    /// architectures where the layout pays off: the flat MLPs stream
    /// hundreds of KB of weights per decision. The kernel network's
    /// weights are L1-resident (layout is irrelevant) and the CNN is not
    /// dense-dominated, so those return `None` and serve unpacked.
    pub fn packed(&self) -> Option<PackedMlp> {
        match self {
            PolicyNet::Mlp(p) => Some(p.packed()),
            PolicyNet::Kernel(_) | PolicyNet::LeNet(_) => None,
        }
    }

    /// [`PolicyNet::packed`] wrapped as a [`BatchPolicy`] scorer, serving
    /// single decisions and coalesced batches through one code path.
    pub fn packed_scorer(&self) -> Option<PackedScorer> {
        self.packed().map(PackedScorer::new)
    }
}

impl PolicyModel for PolicyNet {
    fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
        match self {
            PolicyNet::Kernel(p) => p.log_probs(g, obs, mask, binds),
            PolicyNet::Mlp(p) => p.log_probs(g, obs, mask, binds),
            PolicyNet::LeNet(p) => p.log_probs(g, obs, mask, binds),
        }
    }

    fn log_probs_fast(&self, obs: &[f32], mask: &[f32], scratch: &mut Scratch, out: &mut Vec<f32>) {
        match self {
            PolicyNet::Kernel(p) => p.log_probs_fast(obs, mask, scratch, out),
            PolicyNet::Mlp(p) => p.log_probs_fast(obs, mask, scratch, out),
            PolicyNet::LeNet(p) => p.log_probs_fast(obs, mask, scratch, out),
        }
    }

    fn log_probs_fast_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        match self {
            PolicyNet::Kernel(p) => p.log_probs_fast_batch(obs, masks, rows, scratch, out),
            PolicyNet::Mlp(p) => p.log_probs_fast_batch(obs, masks, rows, scratch, out),
            // The CNN forward is per-image; rows loop through the single
            // fast path (the trait default's behavior).
            PolicyNet::LeNet(p) => p.log_probs_fast_batch(obs, masks, rows, scratch, out),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        match self {
            PolicyNet::Kernel(p) => p.params(),
            PolicyNet::Mlp(p) => p.params(),
            PolicyNet::LeNet(p) => p.params(),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            PolicyNet::Kernel(p) => p.params_mut(),
            PolicyNet::Mlp(p) => p.params_mut(),
            PolicyNet::LeNet(p) => p.params_mut(),
        }
    }

    // The kernel and flat-MLP architectures train through the fused
    // tape-free update; the CNN has conv/pool layers the analytic
    // backward does not cover, so it stays on the tape.
    fn fused(&self) -> Option<FusedPolicy<'_>> {
        match self {
            PolicyNet::Kernel(p) => p.fused(),
            PolicyNet::Mlp(p) => p.fused(),
            PolicyNet::LeNet(_) => None,
        }
    }

    fn fused_mut(&mut self) -> Option<&mut Mlp> {
        match self {
            PolicyNet::Kernel(p) => p.fused_mut(),
            PolicyNet::Mlp(p) => p.fused_mut(),
            PolicyNet::LeNet(_) => None,
        }
    }
}

/// A weight-transposed serving scorer: a [`PackedMlp`] snapshot behind
/// the [`BatchPolicy`] interface, so the packed `[out, in]` layout serves
/// single decisions (`rows == 1`) and coalesced batches through the
/// *same* code path as every other scorer. The NT kernel computes each
/// output row independently, so batch size never changes a row's bits.
///
/// A pack is a snapshot: build it while the agent's weights are frozen
/// (e.g. for the lifetime of a borrowed serving policy) and rebuild
/// after training.
#[derive(Debug, Clone)]
pub struct PackedScorer {
    packed: PackedMlp,
}

impl PackedScorer {
    /// Wrap a packed network whose final layer emits one logit per
    /// action slot.
    pub fn new(packed: PackedMlp) -> Self {
        PackedScorer { packed }
    }

    /// Action-slot count (the packed head width).
    pub fn n_actions(&self) -> usize {
        self.packed.out_dim()
    }
}

impl BatchPolicy for PackedScorer {
    fn log_probs_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        self.packed.forward(obs, rows, scratch, out);
        mask_and_log_softmax_rows(out, masks, rows, self.packed.out_dim());
    }
}

/// A frozen, shareable scoring replica for serving tiers: the policy's
/// weights behind an [`Arc`](std::sync::Arc), so a sharded server
/// replicates it per worker thread at pointer cost. Architecture
/// selection matches [`crate::Agent::as_policy`] exactly — flat MLPs
/// serve through the weight-transposed [`PackedScorer`], the kernel
/// policy and the CNN through their unpacked fast paths — so decisions
/// scored through a snapshot are **bit-identical** to the in-process
/// policy adapter's, batch by batch, row by row (the forward kernels are
/// row-count invariant).
///
/// Like a [`PackedScorer`] pack, a snapshot does not track later weight
/// updates: take it from a frozen agent and re-take after training (a
/// serving tier hot-swaps the new snapshot in).
#[derive(Debug, Clone)]
pub struct ScorerSnapshot {
    repr: std::sync::Arc<ScorerRepr>,
    obs_dim: usize,
    n_actions: usize,
}

// One instance per snapshot, always behind the Arc; boxing buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum ScorerRepr {
    /// Weight-transposed pack (flat MLPs — the weight-streaming case).
    Packed(PackedScorer),
    /// Unpacked replica (kernel policy / CNN — L1-resident or conv).
    Net(PolicyNet),
}

impl ScorerSnapshot {
    /// Snapshot a policy network. `obs_dim` is the flattened observation
    /// width the net was built for (`max_obsv × JOB_FEATURES`).
    pub fn new(net: &PolicyNet, obs_dim: usize, n_actions: usize) -> Self {
        let repr = match net.packed_scorer() {
            Some(p) => ScorerRepr::Packed(p),
            None => ScorerRepr::Net(net.clone()),
        };
        ScorerSnapshot {
            repr: std::sync::Arc::new(repr),
            obs_dim,
            n_actions,
        }
    }

    /// Flattened observation width a request row must have.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Action-slot count (= mask width of a request row).
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// True when this snapshot serves through the transposed pack.
    pub fn is_packed(&self) -> bool {
        matches!(*self.repr, ScorerRepr::Packed(_))
    }

    /// True when every weight in the snapshot is a finite float. The
    /// first gate of a serving tier's checkpoint validation: a NaN/Inf
    /// anywhere in the parameters poisons every logit it touches, so a
    /// non-finite snapshot must be rejected before it can go live.
    pub fn all_finite(&self) -> bool {
        match &*self.repr {
            ScorerRepr::Packed(p) => p.packed.all_finite(),
            ScorerRepr::Net(n) => n
                .params()
                .iter()
                .all(|t| t.data().iter().all(|v| v.is_finite())),
        }
    }
}

impl BatchPolicy for ScorerSnapshot {
    fn log_probs_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        match &*self.repr {
            ScorerRepr::Packed(p) => p.log_probs_batch(obs, masks, rows, scratch, out),
            ScorerRepr::Net(n) => n.log_probs_fast_batch(obs, masks, rows, scratch, out),
        }
    }
}

// A serving shard owns a snapshot per worker thread; the compiler must
// never stop guaranteeing those replicas can cross and be shared across
// threads. (The representation is plain `Vec<f32>` weights end to end —
// no interior mutability — which these bounds pin at compile time.)
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<ScorerSnapshot>();
    assert_send_sync::<PackedScorer>();
    assert_send_sync::<PolicyNet>();
    assert_send_sync::<ValueNet>();
};

/// The critic (Fig 6): a 3-hidden-layer MLP over the flat observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueNet {
    net: Mlp,
}

impl ValueNet {
    /// Build for a given observation window.
    pub fn new(max_obsv: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        ValueNet {
            net: Mlp::new(
                &[max_obsv * JOB_FEATURES, 32, 16, 8, 1],
                Activation::Relu,
                Activation::Identity,
                &mut rng,
            ),
        }
    }
}

impl ValueModel for ValueNet {
    fn values(&self, g: &mut Graph, obs: Var, binds: &mut ParamBinds) -> Var {
        self.net.forward(g, obs, binds)
    }

    fn value_fast(&self, obs: &[f32], scratch: &mut Scratch) -> f64 {
        // Borrow the third scratch buffer as the output row (the MLP's
        // internal ping-pong uses the first two).
        let mut out = std::mem::take(infer::scratch_extra(scratch));
        infer::mlp_forward(&self.net, obs, 1, scratch, &mut out);
        let v = out[0] as f64;
        *infer::scratch_extra(scratch) = out;
        v
    }

    fn value_fast_batch(
        &self,
        obs: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f64>,
    ) {
        // One stacked forward for every live environment's state value —
        // the critic half of the lockstep rollout tick. Row-count
        // invariance of the dense kernels keeps element `i` bit-identical
        // to `value_fast` on row `i` alone.
        let mut tmp = std::mem::take(infer::scratch_extra(scratch));
        infer::mlp_forward(&self.net, obs, rows, scratch, &mut tmp);
        out.clear();
        out.extend(tmp.iter().map(|&v| v as f64));
        *infer::scratch_extra(scratch) = tmp;
    }

    fn params(&self) -> Vec<&Tensor> {
        self.net.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.net.params_mut()
    }

    fn fused(&self) -> Option<&Mlp> {
        Some(&self.net)
    }

    fn fused_mut(&mut self) -> Option<&mut Mlp> {
        Some(&mut self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_rl::categorical::MASK_OFF;

    fn forward(policy: &dyn PolicyModel, obs: &[f32], mask: &[f32], k: usize) -> Vec<f32> {
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input(Tensor::from_vec(obs.to_vec(), &[1, obs.len()]));
        let m = g.input(Tensor::from_vec(mask.to_vec(), &[1, k]));
        let lp = policy.log_probs(&mut g, o, m, &mut binds);
        g.value(lp).data().to_vec()
    }

    fn random_obs(k: usize, valid: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = vec![0.0f32; k * JOB_FEATURES];
        let mut mask = vec![MASK_OFF; k];
        for s in 0..valid {
            for f in 0..JOB_FEATURES {
                obs[s * JOB_FEATURES + f] = rng.gen_range(0.0..1.0);
            }
            obs[s * JOB_FEATURES + JOB_FEATURES - 1] = 1.0;
            mask[s] = 0.0;
        }
        (obs, mask)
    }

    #[test]
    fn kernel_param_count_under_1000() {
        // §IV-B1: "we are able to control the parameter size of the policy
        // network less than 1,000".
        let p = KernelPolicy::new(128, 0);
        assert!(
            p.param_count() < 1000,
            "kernel params = {}",
            p.param_count()
        );
    }

    #[test]
    fn kernel_is_order_equivariant() {
        // Swapping two job rows must swap their probabilities exactly and
        // leave everyone else's unchanged — the Fig 2 requirement.
        let k = 16;
        let p = KernelPolicy::new(k, 3);
        let (mut obs, mask) = random_obs(k, 8, 42);
        let before = forward(&p, &obs, &mask, k);
        // swap job rows 2 and 5
        for f in 0..JOB_FEATURES {
            obs.swap(2 * JOB_FEATURES + f, 5 * JOB_FEATURES + f);
        }
        let after = forward(&p, &obs, &mask, k);
        assert!((before[2] - after[5]).abs() < 1e-5);
        assert!((before[5] - after[2]).abs() < 1e-5);
        for s in 0..8 {
            if s != 2 && s != 5 {
                assert!((before[s] - after[s]).abs() < 1e-5, "slot {s} changed");
            }
        }
    }

    #[test]
    fn flat_mlp_is_order_sensitive() {
        // The counterpoint: MLP baselines change other slots' scores when
        // rows swap (that is the paper's argument for the kernel design).
        let k = 16;
        let p = FlatMlpPolicy::new(k, &[32, 16, 8], 3);
        let (mut obs, mask) = random_obs(k, 8, 42);
        let before = forward(&p, &obs, &mask, k);
        for f in 0..JOB_FEATURES {
            obs.swap(2 * JOB_FEATURES + f, 5 * JOB_FEATURES + f);
        }
        let after = forward(&p, &obs, &mask, k);
        let moved: f32 = (0..8)
            .filter(|&s| s != 2 && s != 5)
            .map(|s| (before[s] - after[s]).abs())
            .sum();
        assert!(
            moved > 1e-4,
            "flat MLP unexpectedly equivariant (moved {moved})"
        );
    }

    #[test]
    fn all_variants_emit_normalized_masked_distributions() {
        let k = 64;
        for kind in PolicyKind::all() {
            let p = PolicyNet::build(kind, k, 7);
            let (obs, mask) = random_obs(k, 10, 9);
            let lp = forward(&p, &obs, &mask, k);
            let sum: f32 = lp.iter().map(|l| l.exp()).sum();
            assert!((sum - 1.0).abs() < 1e-4, "{}: sum {sum}", kind.name());
            for (s, &l) in lp.iter().enumerate().skip(10) {
                assert!(l < -1e8, "{}: padding slot {s} not masked", kind.name());
            }
        }
    }

    #[test]
    fn table4_sizes_are_ordered_as_expected() {
        let k = 128;
        let kernel = PolicyNet::build(PolicyKind::Kernel, k, 0).param_count();
        let v1 = PolicyNet::build(PolicyKind::MlpV1, k, 0).param_count();
        let v2 = PolicyNet::build(PolicyKind::MlpV2, k, 0).param_count();
        assert!(kernel < v2, "kernel {kernel} smaller than MLP v2 {v2}");
        assert!(v2 < v1, "MLP v2 {v2} smaller than MLP v1 {v1}");
    }

    #[test]
    fn value_net_emits_one_scalar_per_row() {
        let k = 32;
        let v = ValueNet::new(k, 1);
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input(Tensor::zeros(&[5, k * JOB_FEATURES]));
        let out = v.values(&mut g, o, &mut binds);
        assert_eq!(g.value(out).shape(), &[5, 1]);
    }

    #[test]
    fn policy_nets_serialize_round_trip() {
        let p = PolicyNet::build(PolicyKind::Kernel, 32, 5);
        let json = serde_json::to_string(&p).unwrap();
        let q: PolicyNet = serde_json::from_str(&json).unwrap();
        let (obs, mask) = random_obs(32, 6, 11);
        assert_eq!(forward(&p, &obs, &mask, 32), forward(&q, &obs, &mask, 32));
    }

    #[test]
    #[should_panic(expected = "max_obsv % 4")]
    fn lenet_rejects_tiny_windows() {
        let _ = LeNetPolicy::new(20, 0);
    }

    #[test]
    fn batch_forward_matches_single_rows() {
        let k = 16;
        let p = KernelPolicy::new(k, 13);
        let (obs1, mask1) = random_obs(k, 5, 1);
        let (obs2, mask2) = random_obs(k, 9, 2);
        let single1 = forward(&p, &obs1, &mask1, k);
        let single2 = forward(&p, &obs2, &mask2, k);
        // Batch the two observations together.
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let mut obs = obs1.clone();
        obs.extend_from_slice(&obs2);
        let mut mask = mask1.clone();
        mask.extend_from_slice(&mask2);
        let o = g.input(Tensor::from_vec(obs, &[2, k * JOB_FEATURES]));
        let m = g.input(Tensor::from_vec(mask, &[2, k]));
        let lp = p.log_probs(&mut g, o, m, &mut binds);
        let batched = g.value(lp);
        for j in 0..k {
            assert!((batched.at(0, j) - single1[j]).abs() < 1e-5);
            assert!((batched.at(1, j) - single2[j]).abs() < 1e-5);
        }
    }
}
