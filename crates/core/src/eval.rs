//! The evaluation protocol of §V: schedule the *same* randomly sampled
//! job sequences with every scheduler and compare their metric means.
//!
//! "In each experiment, we scheduled a random job sequence that contains
//! long continuous jobs (1,024) … we repeated the evaluations 10 times …
//! across different scheduling algorithms, we used the same 10 random job
//! sequences to make fair comparisons." (§V-C2)

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rlsched_rl::{greedy_batch, ActorScratch, VecEnv};
use rlsched_sim::{run_episode, EpisodeMetrics, MetricKind, Policy, SimConfig};
use rlsched_swf::{JobTrace, SequenceSampler};

use crate::agent::Agent;
use crate::env::SchedulingEnv;

/// Default evaluation shape: 10 sequences of 1024 jobs.
pub const DEFAULT_EVAL_SEQS: usize = 10;
/// Default evaluation sequence length.
pub const DEFAULT_EVAL_LEN: usize = 1024;

/// Sample `n` windows of `seq_len` jobs from `trace`, reproducibly. The
/// same windows must be passed to every compared scheduler.
pub fn sample_eval_windows(trace: &JobTrace, n: usize, seq_len: usize, seed: u64) -> Vec<JobTrace> {
    let seq_len = seq_len.min(trace.len());
    let sampler = SequenceSampler::new(trace.len(), seq_len).expect("non-degenerate trace");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let off = sampler.offset_from_draw(rng.gen());
            trace.window(off, seq_len).expect("offset valid")
        })
        .collect()
}

/// Run one policy over every window; returns per-window episode metrics.
pub fn evaluate_policy<P: Policy>(
    windows: &[JobTrace],
    sim: SimConfig,
    policy: &mut P,
) -> Vec<EpisodeMetrics> {
    windows
        .iter()
        .map(|w| run_episode(w, sim, policy).expect("window is schedulable"))
        .collect()
}

/// Evaluate a trained agent greedily over every window **in lockstep**:
/// one [`SchedulingEnv`] per window, all live windows' decision points
/// stacked into one matrix and scored through a single batched policy
/// forward per simulator tick — the same [`rlsched_rl::BatchPolicy`]
/// path training rollouts and batch serving use. Windows that finish
/// early retire from the stack; per-window metrics come back in window
/// order.
///
/// Decisions are bit-identical to the sequential
/// [`evaluate_policy`]-with-[`Agent::as_policy`] protocol for unpacked
/// architectures (the kernel policy and the CNN); flat-MLP agents serve
/// `as_policy` through the weight-transposed pack, which may differ on
/// floating-point near-ties.
pub fn evaluate_agent(agent: &Agent, windows: &[JobTrace], sim: SimConfig) -> Vec<EpisodeMetrics> {
    assert!(!windows.is_empty(), "need at least one evaluation window");
    let envs: Vec<SchedulingEnv> = windows
        .iter()
        .map(|w| {
            // seq_len == trace len: the only samplable window is the whole
            // trace, so the env replays exactly this window every episode.
            SchedulingEnv::new(
                Arc::new(w.clone()),
                w.len(),
                sim,
                *agent.encoder(),
                agent.objective(),
            )
        })
        .collect();
    let mut venv = VecEnv::new(envs);
    // One episode per window; seeds are inert (the window draw is forced).
    let seeds: Vec<u64> = (0..windows.len() as u64).collect();
    let (mut obs, mut masks) = (Vec::new(), Vec::new());
    let mut outcomes = Vec::new();
    let mut scratch = ActorScratch::new();
    let mut actions = Vec::new();
    venv.reset_all(&seeds, &mut obs, &mut masks);
    while !venv.is_done() {
        let rows = venv.live_count();
        greedy_batch(
            &agent.ppo().policy,
            &obs,
            &masks,
            rows,
            &mut scratch,
            &mut actions,
        );
        venv.step_all(&actions, &mut obs, &mut masks, &mut outcomes);
    }
    venv.into_envs()
        .iter()
        .map(|e| e.metrics().expect("every window ran to completion"))
        .collect()
}

/// Mean of a metric over per-window results (one table cell of the paper).
pub fn mean_metric(results: &[EpisodeMetrics], kind: MetricKind) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|m| m.metric(kind)).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_sched::{HeuristicKind, PriorityScheduler};
    use rlsched_swf::Job;

    fn trace() -> JobTrace {
        let jobs = (0..200u32)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 30.0,
                    100.0 + (i % 7) as f64 * 150.0,
                    1 + (i % 4),
                    1500.0,
                )
            })
            .collect();
        JobTrace::new(jobs, 8)
    }

    #[test]
    fn windows_are_reproducible_and_shifted() {
        let t = trace();
        let a = sample_eval_windows(&t, 5, 50, 42);
        let b = sample_eval_windows(&t, 5, 50, 42);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.jobs(), y.jobs());
            assert_eq!(x.jobs()[0].submit_time, 0.0);
        }
    }

    #[test]
    fn different_seed_different_windows() {
        let t = trace();
        let a = sample_eval_windows(&t, 3, 50, 1);
        let b = sample_eval_windows(&t, 3, 50, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.jobs() != y.jobs()));
    }

    #[test]
    fn seq_len_clamped_to_trace() {
        let t = trace();
        let w = sample_eval_windows(&t, 2, 10_000, 3);
        assert_eq!(w[0].len(), 200);
    }

    #[test]
    fn paired_evaluation_is_fair() {
        // The same windows go to both schedulers; results are comparable
        // pairwise, which is the whole point of the protocol.
        let t = trace();
        let windows = sample_eval_windows(&t, 4, 60, 7);
        let mut fcfs = PriorityScheduler::new(HeuristicKind::Fcfs);
        let mut sjf = PriorityScheduler::new(HeuristicKind::Sjf);
        let rf = evaluate_policy(&windows, SimConfig::default(), &mut fcfs);
        let rs = evaluate_policy(&windows, SimConfig::default(), &mut sjf);
        assert_eq!(rf.len(), 4);
        assert_eq!(rs.len(), 4);
        let mf = mean_metric(&rf, MetricKind::BoundedSlowdown);
        let ms = mean_metric(&rs, MetricKind::BoundedSlowdown);
        assert!(mf >= 1.0 && ms >= 1.0);
    }

    #[test]
    fn mean_metric_empty_is_zero() {
        assert_eq!(mean_metric(&[], MetricKind::WaitTime), 0.0);
    }
}
