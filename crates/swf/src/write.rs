//! SWF writer: emits traces in a form [`crate::parse`] reads back losslessly.

use std::fmt::Write as FmtWrite;
use std::io::Write;

use crate::error::SwfError;
use crate::job::Job;
use crate::parse::SwfHeader;
use crate::trace::JobTrace;

fn fmt_time(v: f64) -> String {
    // SWF times are seconds; archives use integers where possible. Keep
    // fractional values when present so round-trips are exact.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Append one 18-field SWF record line (with trailing newline) to `out`.
/// Every writer funnels through this, so the record format cannot drift
/// between the materialized and streaming paths.
pub fn push_job_line(out: &mut String, j: &Job) {
    let _ = writeln!(
        out,
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        j.id,
        fmt_time(j.submit_time),
        fmt_time(j.trace_wait_time),
        fmt_time(j.run_time),
        j.used_procs,
        fmt_time(j.avg_cpu_time),
        fmt_time(j.used_memory),
        j.requested_procs,
        fmt_time(j.requested_time),
        fmt_time(j.requested_memory),
        j.status.to_swf(),
        j.user_id,
        j.group_id,
        j.executable_id,
        j.queue_id,
        j.partition_id,
        j.preceding_job,
        fmt_time(j.think_time),
    );
}

fn push_header(out: &mut String, header: &SwfHeader, max_procs: u32) {
    for (k, v) in &header.fields {
        let _ = writeln!(out, "; {k}: {v}");
    }
    if !header.fields.contains_key("MaxProcs") {
        let _ = writeln!(out, "; MaxProcs: {max_procs}");
    }
    for c in &header.comments {
        let _ = writeln!(out, "; {c}");
    }
}

/// Serialize a trace to SWF text.
pub fn write_string(trace: &JobTrace) -> String {
    let mut out = String::new();
    push_header(&mut out, trace.header(), trace.max_procs());
    for j in trace.jobs() {
        push_job_line(&mut out, j);
    }
    out
}

/// Serialize a trace to any [`Write`] sink.
pub fn write_writer<W: Write>(trace: &JobTrace, mut w: W) -> Result<(), SwfError> {
    w.write_all(write_string(trace).as_bytes())?;
    Ok(())
}

/// Stream an SWF document to a sink from an iterator of jobs, without
/// ever holding the trace in memory: the header goes out first, then one
/// record line per job through a reused buffer. The byte output for a
/// given header + job sequence is identical to [`write_string`] on the
/// equivalent materialized [`JobTrace`] (same `push_job_line` core).
pub fn write_jobs<W: Write>(
    header: &SwfHeader,
    max_procs: u32,
    jobs: impl Iterator<Item = Job>,
    mut w: W,
) -> Result<(), SwfError> {
    let mut buf = String::with_capacity(256);
    push_header(&mut buf, header, max_procs);
    w.write_all(buf.as_bytes())?;
    for j in jobs {
        buf.clear();
        push_job_line(&mut buf, &j);
        w.write_all(buf.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::parse::parse_str;

    #[test]
    fn round_trip_simple_trace() {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 4, 120.0).with_user(3),
            Job::new(2, 10.5, 50.0, 8, 60.0).with_user(4),
        ];
        let t = JobTrace::new(jobs, 128);
        let text = write_string(&t);
        let back = parse_str(&text).unwrap();
        assert_eq!(back.max_procs(), 128);
        assert_eq!(back.jobs(), t.jobs());
    }

    #[test]
    fn writes_maxprocs_header() {
        let t = JobTrace::new(vec![Job::new(1, 0.0, 1.0, 1, 1.0)], 99);
        let text = write_string(&t);
        assert!(text.contains("; MaxProcs: 99"));
    }

    #[test]
    fn fractional_times_preserved() {
        let t = JobTrace::new(vec![Job::new(1, 1.25, 2.5, 1, 3.75)], 4);
        let back = parse_str(&write_string(&t)).unwrap();
        assert_eq!(back.jobs()[0].submit_time, 1.25);
        assert_eq!(back.jobs()[0].run_time, 2.5);
        assert_eq!(back.jobs()[0].requested_time, 3.75);
    }

    #[test]
    fn writer_to_sink_matches_string() {
        let t = JobTrace::new(vec![Job::new(1, 0.0, 1.0, 1, 1.0)], 4);
        let mut buf = Vec::new();
        write_writer(&t, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), write_string(&t));
    }

    #[test]
    fn streaming_writer_matches_write_string() {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 4, 120.0).with_user(3),
            Job::new(2, 10.5, 50.0, 8, 60.0).with_user(4),
        ];
        let t = JobTrace::new(jobs.clone(), 128);
        let mut buf = Vec::new();
        write_jobs(t.header(), t.max_procs(), jobs.into_iter(), &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), write_string(&t));
    }
}
