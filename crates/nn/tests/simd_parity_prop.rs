//! Property tests: the runtime-dispatched SIMD kernels must agree with
//! the scalar reference loops for every matmul flavor the training path
//! uses — forward (`C = A·B`, bias-seeded dense included), `dA = dC·Bᵀ`
//! (NT) and `dB = Aᵀ·dC` (TN) — across ragged shapes (rows/cols not
//! multiples of the 4×8 block), including rows == 1 and the transposed
//! weight layout.
//!
//! The kernels fuse multiply-adds and reorder accumulation, so values are
//! compared within an ulp-scale relative tolerance; on machines (or CI
//! arms) where SIMD is unavailable the dispatch falls back to the very
//! loops we compare against and the properties hold trivially.

use proptest::prelude::*;

use rlsched_nn::infer::{self, PackedMlp, Scratch};
use rlsched_nn::layers::{Activation, Mlp};
use rlsched_nn::simd;
use rlsched_nn::Tensor;

const TOL: f32 = 1e-4;

fn assert_close(simd: &[f32], scalar: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(simd.len(), scalar.len());
    for (i, (a, b)) in simd.iter().zip(scalar).enumerate() {
        prop_assert!(
            (a - b).abs() <= TOL * (1.0 + b.abs()),
            "element {}: dispatched {} vs scalar {}",
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward: `Tensor::matmul_into` (the tape's MatMul op) ≡ the scalar
    /// i-k-j loop on ragged shapes, including single-row products.
    #[test]
    fn matmul_dispatch_matches_scalar(
        m in 1usize..10,
        k in 1usize..34,
        n in 1usize..40,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let a = pseudo(m, k, seed_a);
        let b = pseudo(k, n, seed_b);
        let mut dispatched = Vec::new();
        a.matmul_into(&b, &mut dispatched);
        let mut scalar = vec![0.0f32; m * n];
        simd::gemm_scalar(a.data(), m, k, b.data(), n, &mut scalar);
        assert_close(&dispatched, &scalar)?;
    }

    /// Backward dA: `matmul_nt_into` (`dA = dC·Bᵀ`) ≡ per-element dot
    /// products, including the rows == 1 transposed-layout case that the
    /// packed serving path runs.
    #[test]
    fn matmul_nt_dispatch_matches_scalar(
        m in 1usize..10,
        k in 1usize..34,
        n in 1usize..40,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let a = pseudo(m, k, seed_a);
        let b = pseudo(n, k, seed_b);
        let mut dispatched = Vec::new();
        a.matmul_nt_into(&b, &mut dispatched);
        let mut scalar = vec![0.0f32; m * n];
        simd::gemm_nt_scalar(a.data(), m, k, b.data(), n, &mut scalar);
        assert_close(&dispatched, &scalar)?;
    }

    /// Backward dB: `matmul_tn_into` (`dB = Aᵀ·dC`) ≡ the scalar rank-1
    /// update loop.
    #[test]
    fn matmul_tn_dispatch_matches_scalar(
        r in 1usize..34,
        m in 1usize..12,
        n in 1usize..40,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let a = pseudo(r, m, seed_a);
        let b = pseudo(r, n, seed_b);
        let mut dispatched = Vec::new();
        a.matmul_tn_into(&b, &mut dispatched);
        let mut scalar = vec![0.0f32; m * n];
        simd::gemm_tn_scalar(a.data(), r, m, b.data(), n, &mut scalar);
        assert_close(&dispatched, &scalar)?;
    }

    /// The bias-seeded dense forward (shared by tape `linear` and the
    /// inference fast path) ≡ the portable tape-order kernel.
    #[test]
    fn dense_dispatch_matches_portable(
        rows in 1usize..10,
        in_dim in 1usize..20,
        out_dim in 1usize..40,
        seed_x in 0u64..1000,
        seed_w in 0u64..1000,
    ) {
        let x = pseudo(rows, in_dim, seed_x);
        let w = pseudo(in_dim, out_dim, seed_w);
        let b: Vec<f32> = (0..out_dim).map(|j| (j as f32 * 0.3).sin() * 0.1).collect();
        let mut dispatched = vec![0.0f32; rows * out_dim];
        simd::dense_any(x.data(), rows, w.data(), &b, in_dim, out_dim, &mut dispatched);
        let mut portable = vec![0.0f32; rows * out_dim];
        simd::dense_portable(x.data(), rows, w.data(), &b, in_dim, out_dim, &mut portable);
        assert_close(&dispatched, &portable)?;
    }

    /// The transposed-weight single-row path (`PackedMlp`, NT kernel) ≡
    /// the standard-layout forward on the same weights.
    #[test]
    fn packed_single_row_matches_standard_layout(
        in_dim in 1usize..24,
        hidden in 1usize..40,
        out_dim in 1usize..24,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &[in_dim, hidden, out_dim],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let x = pseudo(1, in_dim, seed ^ 0xabcd);

        let mut scratch = Scratch::new();
        let mut standard = Vec::new();
        infer::mlp_forward(&mlp, x.data(), 1, &mut scratch, &mut standard);

        let packed = PackedMlp::pack(&mlp);
        let mut transposed = Vec::new();
        packed.forward_row(x.data(), &mut scratch, &mut transposed);
        assert_close(&transposed, &standard)?;
    }

    /// Row-count invariance of the packed batch forward, **exactly**:
    /// row `i` of a stacked `PackedMlp::forward` must reproduce
    /// `forward_row` on row `i` alone bit for bit, at every batch size —
    /// the serving tier's coalescing guarantee (batch composition can
    /// never flip a decision). Exercises the NT kernel's 4-row blocks,
    /// the row remainder, and the odd-n column remainder.
    #[test]
    fn packed_batch_rows_are_bit_identical_to_single_rows(
        rows in 1usize..11,
        in_dim in 1usize..34,
        hidden in 1usize..24,
        out_dim in 1usize..24,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &[in_dim, hidden, out_dim],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let packed = PackedMlp::pack(&mlp);
        let x = pseudo(rows, in_dim, seed ^ 0x5eed);

        let mut scratch = Scratch::new();
        let mut batched = Vec::new();
        packed.forward(x.data(), rows, &mut scratch, &mut batched);
        prop_assert_eq!(batched.len(), rows * out_dim);

        let mut single = Vec::new();
        for r in 0..rows {
            packed.forward_row(
                &x.data()[r * in_dim..(r + 1) * in_dim],
                &mut scratch,
                &mut single,
            );
            for (j, (&b, &s)) in batched[r * out_dim..(r + 1) * out_dim]
                .iter()
                .zip(&single)
                .enumerate()
            {
                prop_assert!(
                    b.to_bits() == s.to_bits(),
                    "row {} col {}: batched {} != single {}",
                    r, j, b, s
                );
            }
        }
    }
}

/// Deterministic pseudo-random matrix (keeps the strategy space on the
/// shape dims, where the block-boundary edge cases live).
fn pseudo(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
            ((h >> 33) as f32 / (1u64 << 31) as f32) * 3.0 - 1.5
        })
        .collect();
    Tensor::from_vec(data, &[rows, cols])
}
