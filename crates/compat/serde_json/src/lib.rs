//! Offline shim for `serde_json`: text rendering/parsing for the
//! [`serde::Value`] tree, plus the `json!` construction macro.
//!
//! Numbers are stored as `f64` (integers ≤ 2^53 round-trip exactly and
//! render without a decimal point). Strings are escaped per RFC 8259;
//! `NaN`/infinite floats render as `null`, as upstream does for
//! non-finite values in lossy mode.

pub use serde::{Error, Map, Value};

/// Render any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, &t.to_value(), None, 0);
    Ok(s)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, &t.to_value(), Some(2), 0);
    Ok(s)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0"); // `as i64` would drop the sign bit
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Shortest representation that round-trips an f64.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            pad(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            pad(out, indent, depth);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ------------------------------------------------------------------ json!

/// Build a [`Value`] from JSON-shaped syntax with embedded expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut __arr: Vec<$crate::Value> = Vec::new();
        $crate::json_items!(__arr; [] $($tt)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __obj = $crate::Map::new();
        $crate::json_fields!(__obj; $($tt)*);
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal array-element muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($arr:ident; []) => {};
    ($arr:ident; [$($cur:tt)+]) => {
        $arr.extend(std::iter::once($crate::json!($($cur)+)));
    };
    ($arr:ident; [$($cur:tt)+] , $($rest:tt)*) => {
        $arr.extend(std::iter::once($crate::json!($($cur)+)));
        $crate::json_items!($arr; [] $($rest)*);
    };
    ($arr:ident; [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_items!($arr; [$($cur)* $next] $($rest)*);
    };
}

/// Internal object-field muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($obj:ident; ) => {};
    ($obj:ident; $key:literal : $($rest:tt)+) => {
        $crate::json_field_value!($obj; $key [] $($rest)+);
    };
}

/// Internal field-value muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_field_value {
    ($obj:ident; $key:literal [$($cur:tt)+]) => {
        $obj.insert($key.to_string(), $crate::json!($($cur)+));
    };
    ($obj:ident; $key:literal [$($cur:tt)+] , $($rest:tt)*) => {
        $obj.insert($key.to_string(), $crate::json!($($cur)+));
        $crate::json_fields!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_field_value!($obj; $key [$($cur)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_typical_document() {
        let v = json!({
            "name": "trace", "count": 42, "ratio": 0.125,
            "tags": ["a", "b"], "nested": {"ok": true, "none": null}
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&(-7i64)).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_survives() {
        let s = "héllo wörld ☃".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let x = 3.5f64;
        let xs = vec![1u32, 2];
        let v = json!({"x": x, "twice": x * 2.0, "xs": xs, "pair": [x, 1]});
        assert_eq!(v.get("twice").unwrap().as_f64().unwrap(), 7.0);
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("pair").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
