//! Parallel trajectory collection.
//!
//! Each PPO epoch samples many complete episodes (the paper uses 100
//! trajectories of 256 scheduling decisions, §V-A). Episodes are
//! independent given the frozen policy, so they parallelize perfectly:
//! every environment rolls out on its own rayon task with a thread-local
//! RNG and a per-worker [`crate::ppo::ActorScratch`] (action selection
//! runs through the allocation-free inference fast path, not the
//! autodiff tape), and the per-episode buffers merge into one normalized
//! batch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::buffer::{Batch, RolloutBuffer};
use crate::env::Env;
use crate::ppo::{PolicyModel, Ppo, ValueModel};

/// Summary of one collection round.
#[derive(Debug, Clone)]
pub struct RolloutStats {
    /// Episodes collected.
    pub episodes: usize,
    /// Total transitions collected.
    pub steps: usize,
    /// Mean episodic reward sum.
    pub mean_return: f64,
    /// Per-episode objective values (e.g. average bounded slowdown),
    /// as reported by the environments.
    pub metrics: Vec<f64>,
}

impl RolloutStats {
    /// Mean of the per-episode objective values.
    pub fn mean_metric(&self) -> f64 {
        if self.metrics.is_empty() {
            return 0.0;
        }
        self.metrics.iter().sum::<f64>() / self.metrics.len() as f64
    }
}

/// Roll out one full episode of `env` under the current policy.
fn run_episode<E, P, V>(
    ppo: &Ppo<P, V>,
    env: &mut E,
    seed: u64,
) -> (RolloutBuffer, f64, Option<f64>)
where
    E: Env,
    P: PolicyModel,
    V: ValueModel,
{
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut buf = RolloutBuffer::new(env.obs_dim(), env.n_actions(), ppo.cfg.gamma, ppo.cfg.lam);
    // One scratch per worker-episode: every action selection inside the
    // episode runs through the allocation-free inference fast path. The
    // env writes observations/masks into this double-buffered pair (the
    // step's outputs land in `next_*` while `obs`/`mask` are still needed
    // for the store), so steady-state stepping allocates nothing.
    let mut scratch = crate::ppo::ActorScratch::new();
    let (mut obs, mut mask) = (Vec::new(), Vec::new());
    let (mut next_obs, mut next_mask) = (Vec::new(), Vec::new());
    env.reset(seed, &mut obs, &mut mask);
    let mut ep_return = 0.0;
    let metric = loop {
        let (a, logp, v) = ppo.select_with(&obs, &mask, &mut scratch, &mut rng);
        let out = env.step(a, &mut next_obs, &mut next_mask);
        buf.store(&obs, &mask, a, out.reward, v, logp);
        ep_return += out.reward;
        if out.done {
            buf.finish_path(0.0);
            break out.episode_metric;
        }
        std::mem::swap(&mut obs, &mut next_obs);
        std::mem::swap(&mut mask, &mut next_mask);
    };
    (buf, ep_return, metric)
}

/// Collect one episode per `(env, seed)` pair, in parallel, and merge into
/// a training batch.
pub fn collect_rollouts<E, P, V>(
    ppo: &Ppo<P, V>,
    envs: &mut [E],
    seeds: &[u64],
) -> (Batch, RolloutStats)
where
    E: Env + Send,
    P: PolicyModel + Sync,
    V: ValueModel + Sync,
{
    assert_eq!(envs.len(), seeds.len(), "one seed per environment");
    assert!(!envs.is_empty(), "need at least one environment");

    let results: Vec<(RolloutBuffer, f64, Option<f64>)> = envs
        .par_iter_mut()
        .zip(seeds.par_iter())
        .map(|(env, &seed)| run_episode(ppo, env, seed))
        .collect();

    let episodes = results.len();
    let mut buffers = Vec::with_capacity(episodes);
    let mut returns = 0.0;
    let mut metrics = Vec::new();
    let mut steps = 0;
    for (buf, ret, metric) in results {
        steps += buf.len();
        returns += ret;
        if let Some(m) = metric {
            metrics.push(m);
        }
        buffers.push(buf);
    }
    let batch = RolloutBuffer::into_batch(buffers);
    let stats = RolloutStats {
        episodes,
        steps,
        mean_return: returns / episodes as f64,
        metrics,
    };
    (batch, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::BanditEnv;
    use crate::ppo::PpoConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlsched_nn::{Activation, Graph, Mlp, Network, ParamBinds, Tensor, Var};

    struct P(Mlp);
    impl PolicyModel for P {
        fn log_probs(&self, g: &mut Graph, obs: Var, mask: Var, binds: &mut ParamBinds) -> Var {
            let logits = self.0.forward(g, obs, binds);
            let masked = g.add(logits, mask);
            g.log_softmax(masked)
        }
        fn params(&self) -> Vec<&Tensor> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Tensor> {
            self.0.params_mut()
        }
    }
    struct C(Mlp);
    impl ValueModel for C {
        fn values(&self, g: &mut Graph, obs: Var, binds: &mut ParamBinds) -> Var {
            self.0.forward(g, obs, binds)
        }
        fn params(&self) -> Vec<&Tensor> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Tensor> {
            self.0.params_mut()
        }
    }

    fn make_ppo() -> Ppo<P, C> {
        let mut rng = StdRng::seed_from_u64(5);
        Ppo::new(
            P(Mlp::new(
                &[2, 8, 3],
                Activation::Tanh,
                Activation::Identity,
                &mut rng,
            )),
            C(Mlp::new(
                &[2, 8, 1],
                Activation::Tanh,
                Activation::Identity,
                &mut rng,
            )),
            PpoConfig::default(),
        )
    }

    #[test]
    fn collects_one_episode_per_env() {
        let ppo = make_ppo();
        let mut envs: Vec<BanditEnv> = (0..6).map(|_| BanditEnv::new(3, 5, vec![])).collect();
        let seeds: Vec<u64> = (0..6).collect();
        let (batch, stats) = collect_rollouts(&ppo, &mut envs, &seeds);
        assert_eq!(stats.episodes, 6);
        assert_eq!(stats.steps, 30, "6 episodes x 5 steps");
        assert_eq!(batch.len(), 30);
        assert_eq!(stats.metrics.len(), 6);
    }

    #[test]
    fn deterministic_given_seeds() {
        let ppo = make_ppo();
        let run = || {
            let mut envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(3, 4, vec![])).collect();
            let seeds: Vec<u64> = (10..14).collect();
            collect_rollouts(&ppo, &mut envs, &seeds)
        };
        let (b1, s1) = run();
        let (b2, s2) = run();
        assert_eq!(b1.actions, b2.actions);
        assert_eq!(b1.logp_old, b2.logp_old);
        assert_eq!(s1.mean_return, s2.mean_return);
    }

    #[test]
    fn respects_masks_during_collection() {
        let ppo = make_ppo();
        // Arm 2 is masked; BanditEnv panics if a masked arm is selected.
        let mut envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(3, 6, vec![2])).collect();
        let seeds: Vec<u64> = (0..4).collect();
        let (_batch, stats) = collect_rollouts(&ppo, &mut envs, &seeds);
        assert_eq!(stats.episodes, 4);
    }

    #[test]
    #[should_panic(expected = "one seed per environment")]
    fn seed_count_must_match() {
        let ppo = make_ppo();
        let mut envs: Vec<BanditEnv> = vec![BanditEnv::new(3, 4, vec![])];
        let _ = collect_rollouts(&ppo, &mut envs, &[1, 2]);
    }

    #[test]
    fn mean_metric_matches_manual_average() {
        let stats = RolloutStats {
            episodes: 2,
            steps: 10,
            mean_return: 0.0,
            metrics: vec![2.0, 4.0],
        };
        assert_eq!(stats.mean_metric(), 3.0);
        let empty = RolloutStats {
            episodes: 0,
            steps: 0,
            mean_return: 0.0,
            metrics: vec![],
        };
        assert_eq!(empty.mean_metric(), 0.0);
    }
}
