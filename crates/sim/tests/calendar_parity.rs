//! Calendar parity: a session on the indexed (Fenwick) wait queue must be
//! bit-identical to one on the seed `Vec` queue — same trajectories, same
//! metrics — across seeded traces, both backfill modes, and selection
//! policies that exercise out-of-order removal.

use rand::prelude::*;
use rlsched_sim::{
    EpisodeMetrics, LinearSession, QueueBackend, SchedSession, SimConfig, WaitingJob,
};
use rlsched_swf::{Job, JobTrace};

fn random_trace(seed: u64, n: usize, procs: u32) -> JobTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let jobs = (0..n)
        .map(|i| {
            t += rng.gen_range(0.0..40.0);
            Job::new(
                i as u32 + 1,
                t,
                rng.gen_range(1.0..300.0),
                rng.gen_range(1..=procs),
                rng.gen_range(1.0..400.0),
            )
            .with_user(rng.gen_range(0..7))
        })
        .collect();
    JobTrace::new(jobs, procs)
}

/// Run one episode on a given backend, choosing ranks with `pick`.
fn run<Q: QueueBackend>(
    trace: &JobTrace,
    cfg: SimConfig,
    mut pick: impl FnMut(usize, &mut dyn Iterator<Item = WaitingJob>) -> usize,
) -> EpisodeMetrics {
    let mut s = SchedSession::<Q>::with_queue(trace, cfg).unwrap();
    while !s.done() {
        let len = s.queue_len();
        let pos = pick(len, &mut s.waiting_jobs());
        s.step(pos).unwrap();
    }
    s.metrics().unwrap()
}

fn assert_parity(
    trace: &JobTrace,
    cfg: SimConfig,
    mut pick: impl FnMut(usize, &mut dyn Iterator<Item = WaitingJob>) -> usize + Clone,
) {
    let linear = run::<rlsched_sim::LinearQueue>(trace, cfg, &mut pick);
    let indexed = run::<rlsched_sim::IndexedQueue>(trace, cfg, &mut pick);
    assert_eq!(linear, indexed);
}

#[test]
fn fcfs_parity_across_seeds_and_modes() {
    for seed in 0..5 {
        let trace = random_trace(seed, 400, 16);
        for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
            assert_parity(&trace, cfg, |_, _| 0);
        }
    }
}

#[test]
fn sjf_like_parity() {
    // Pick the shortest requested runtime: deep out-of-order removals.
    let pick = |_len: usize, waiting: &mut dyn Iterator<Item = WaitingJob>| {
        waiting
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.job
                    .time_bound()
                    .partial_cmp(&b.job.time_bound())
                    .unwrap()
                    .then(a.job_index.cmp(&b.job_index))
            })
            .map(|(rank, _)| rank)
            .unwrap_or(0)
    };
    for seed in 0..3 {
        let trace = random_trace(100 + seed, 400, 16);
        for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
            assert_parity(&trace, cfg, pick);
        }
    }
}

#[test]
fn random_policy_parity() {
    // Seeded random rank picks: both sessions see identical queue lengths
    // at every decision (or the pick sequences would diverge), which this
    // test implicitly verifies as well.
    for seed in 0..3 {
        let trace = random_trace(200 + seed, 300, 8);
        for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
            let picks = std::cell::RefCell::new(StdRng::seed_from_u64(seed ^ 0xbeef));
            let linear = run::<rlsched_sim::LinearQueue>(&trace, cfg, |len, _| {
                picks.borrow_mut().gen_range(0..len)
            });
            let picks2 = std::cell::RefCell::new(StdRng::seed_from_u64(seed ^ 0xbeef));
            let indexed = run::<rlsched_sim::IndexedQueue>(&trace, cfg, |len, _| {
                picks2.borrow_mut().gen_range(0..len)
            });
            assert_eq!(linear, indexed);
        }
    }
}

#[test]
fn linear_session_alias_still_works() {
    let trace = random_trace(7, 50, 8);
    let mut s = LinearSession::with_queue(&trace, SimConfig::with_backfill()).unwrap();
    while !s.done() {
        s.step(0).unwrap();
    }
    assert_eq!(s.metrics().unwrap().outcomes().len(), 50);
}
