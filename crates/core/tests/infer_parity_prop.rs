//! Property tests: the allocation-free inference fast path must agree
//! with the autodiff tape for every Table IV architecture.
//!
//! The SIMD microkernel reorders float accumulation (FMA), so log-probs
//! are compared within tolerance and the greedy *decision* (masked
//! argmax — what actually schedules jobs) must match exactly whenever
//! the top two logits are not a floating-point near-tie.

use proptest::prelude::*;

use rlsched_nn::{Graph, ParamBinds, Scratch, Tensor};
use rlsched_rl::categorical::MASK_OFF;
use rlsched_rl::{PolicyModel, ValueModel};
use rlscheduler::{PolicyKind, PolicyNet, ValueNet, JOB_FEATURES};

/// Window size: the smallest that every architecture accepts (LeNet
/// needs `max_obsv % 4 == 0 && >= 64`).
const K: usize = 64;

fn tape_log_probs(policy: &PolicyNet, obs: &[f32], mask: &[f32]) -> Vec<f32> {
    let mut g = Graph::new();
    let mut binds = ParamBinds::new();
    let o = g.input(Tensor::from_vec(obs.to_vec(), &[1, obs.len()]));
    let m = g.input(Tensor::from_vec(mask.to_vec(), &[1, mask.len()]));
    let lp = policy.log_probs(&mut g, o, m, &mut binds);
    g.value(lp).data().to_vec()
}

fn fast_log_probs(policy: &PolicyNet, obs: &[f32], mask: &[f32]) -> Vec<f32> {
    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    policy.log_probs_fast(obs, mask, &mut scratch, &mut out);
    out
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Gap between the largest and second-largest entries.
fn top2_gap(xs: &[f32]) -> f32 {
    let mut top = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for &x in xs {
        if x > top {
            second = top;
            top = x;
        } else if x > second {
            second = x;
        }
    }
    top - second
}

fn build_obs(features: &[f32], valid: usize) -> (Vec<f32>, Vec<f32>) {
    let mut obs = vec![0.0f32; K * JOB_FEATURES];
    let mut mask = vec![MASK_OFF; K];
    for s in 0..valid {
        for f in 0..JOB_FEATURES {
            obs[s * JOB_FEATURES + f] = features[(s * JOB_FEATURES + f) % features.len()];
        }
        obs[s * JOB_FEATURES + JOB_FEATURES - 1] = 1.0;
        mask[s] = 0.0;
    }
    (obs, mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance property: for all five `PolicyKind`s, the
    /// `score` fast path and the tape's `log_probs` argmax pick the same
    /// job on random observations.
    #[test]
    fn fast_score_agrees_with_tape_argmax_all_kinds(
        features in prop::collection::vec(0.0f32..1.0, K * JOB_FEATURES),
        valid in 1usize..=K,
        seed in 0u64..50,
    ) {
        let (obs, mask) = build_obs(&features, valid);
        for kind in PolicyKind::all() {
            let policy = PolicyNet::build(kind, K, seed);
            let tape = tape_log_probs(&policy, &obs, &mask);
            let fast = fast_log_probs(&policy, &obs, &mask);
            prop_assert_eq!(fast.len(), tape.len());
            // Log-probs agree within float-reassociation tolerance.
            for (slot, (f, t)) in fast.iter().zip(&tape).enumerate() {
                if mask[slot] == 0.0 {
                    prop_assert!(
                        (f - t).abs() <= 1e-3 * (1.0 + t.abs()),
                        "{}: slot {} fast {} vs tape {}", kind.name(), slot, f, t
                    );
                }
            }
            // The decision itself matches whenever it is not a near-tie.
            if top2_gap(&tape) > 1e-4 {
                prop_assert_eq!(
                    argmax(&fast),
                    argmax(&tape),
                    "{}: fast/tape argmax diverged", kind.name()
                );
            }
            // Masked slots can never win.
            prop_assert!(argmax(&fast) < valid, "{}: picked a padded slot", kind.name());
        }
    }

    /// Batched scoring ≡ per-view scoring for all five `PolicyKind`s:
    /// row `i` of `log_probs_fast_batch` must match `log_probs_fast` on
    /// view `i` alone (within float-reassociation tolerance — the batch
    /// can take a different row-blocking path through the SIMD kernel),
    /// and the argmax decision must match away from near-ties.
    #[test]
    fn batched_scores_agree_with_per_view_scores(
        features in prop::collection::vec(0.0f32..1.0, K * JOB_FEATURES),
        valids in prop::collection::vec(1usize..=K, 3),
        seed in 0u64..50,
    ) {
        let rows = valids.len();
        for kind in PolicyKind::all() {
            let policy = PolicyNet::build(kind, K, seed);
            let mut obs_all = Vec::new();
            let mut mask_all = Vec::new();
            let mut singles = Vec::new();
            for (i, &valid) in valids.iter().enumerate() {
                // Rotate the feature pool so the stacked views differ.
                let mut rotated = features.clone();
                rotated.rotate_left((i * 13) % features.len());
                let (obs, mask) = build_obs(&rotated, valid);
                singles.push(fast_log_probs(&policy, &obs, &mask));
                obs_all.extend_from_slice(&obs);
                mask_all.extend_from_slice(&mask);
            }
            let mut scratch = Scratch::new();
            let mut batched = Vec::new();
            policy.log_probs_fast_batch(&obs_all, &mask_all, rows, &mut scratch, &mut batched);
            prop_assert_eq!(batched.len(), rows * K, "{}: batch shape", kind.name());
            for (i, single) in singles.iter().enumerate() {
                let row = &batched[i * K..(i + 1) * K];
                for (slot, (b, s)) in row.iter().zip(single).enumerate() {
                    if s.is_finite() || b.is_finite() {
                        prop_assert!(
                            (b - s).abs() <= 1e-3 * (1.0 + s.abs()),
                            "{}: view {} slot {} batched {} vs single {}",
                            kind.name(), i, slot, b, s
                        );
                    }
                }
                if top2_gap(single) > 1e-4 {
                    prop_assert_eq!(
                        argmax(row),
                        argmax(single),
                        "{}: view {} batched/single argmax diverged", kind.name(), i
                    );
                }
            }
        }
    }

    /// The critic's fast path agrees with its tape forward.
    #[test]
    fn value_fast_agrees_with_tape(
        features in prop::collection::vec(0.0f32..1.0, K * JOB_FEATURES),
        valid in 1usize..=K,
        seed in 0u64..50,
    ) {
        let (obs, _mask) = build_obs(&features, valid);
        let net = ValueNet::new(K, seed);

        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input(Tensor::from_vec(obs.clone(), &[1, obs.len()]));
        let v = net.values(&mut g, o, &mut binds);
        let tape = g.value(v).data()[0] as f64;

        let fast = net.value_fast(&obs, &mut Scratch::new());
        prop_assert!(
            (fast - tape).abs() <= 1e-4 * (1.0 + tape.abs()),
            "value fast {} vs tape {}", fast, tape
        );
    }
}

/// Agent-level contract: `score_batch` over concurrent queue views picks
/// the same jobs as `greedy_select` on each view alone, for every policy
/// architecture (the kernel's window width is a multiple of the SIMD row
/// block, so its batched forward is bit-identical; the others are checked
/// away from log-prob near-ties via the per-view gap).
#[test]
fn score_batch_matches_per_view_greedy_select() {
    use rlsched_sim::{MetricKind, QueueView, WaitingJob};
    use rlsched_swf::Job;
    use rlscheduler::{Agent, AgentConfig, ObsConfig};

    let jobs: Vec<Job> = (0..40u32)
        .map(|i| {
            Job::new(
                i + 1,
                i as f64 * 10.0,
                30.0 + (i % 7) as f64 * 120.0,
                1 + i % 5,
                60.0 + (i % 11) as f64 * 180.0,
            )
        })
        .collect();
    // Three views over different queue prefixes (different lengths and
    // cluster states).
    let views: Vec<QueueView<'_>> = [(40usize, 16u32), (13, 4), (27, 40)]
        .iter()
        .map(|&(len, free)| QueueView {
            time: 5000.0,
            free_procs: free,
            total_procs: 64,
            waiting: jobs[..len]
                .iter()
                .enumerate()
                .map(|(i, job)| WaitingJob {
                    job,
                    job_index: i,
                    wait: 5000.0 - job.submit_time,
                    can_run_now: job.procs() <= free,
                })
                .collect(),
        })
        .collect();

    for kind in PolicyKind::all() {
        let agent = Agent::new(AgentConfig {
            policy: kind,
            obs: ObsConfig {
                max_obsv: K,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: Default::default(),
            seed: 11,
        });
        let batched = agent.score_batch(&views);
        assert_eq!(batched.len(), views.len());
        for (i, view) in views.iter().enumerate() {
            let (obs, mask) = agent.encoder().encode(view);
            let single = agent.ppo().logp_row(&obs, &mask);
            if top2_gap(&single) > 1e-4 {
                assert_eq!(
                    batched[i],
                    agent.greedy_select(view),
                    "{}: view {i} batched/single decision diverged",
                    kind.name()
                );
            }
            assert!(batched[i] < view.waiting.len(), "decision clamped to queue");
        }
    }
}
