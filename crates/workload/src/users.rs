//! User population models.
//!
//! Fairness experiments (§V-F, Table VIII) need realistic user structure:
//! the paper notes that in HPC2N "one user (u17) submitted around 40K jobs
//! while the average number of jobs per-user is only 700", i.e. a heavily
//! skewed popularity distribution, while SDSC-SP2's users are more
//! balanced. [`UserModel`] captures both shapes: a Zipf-like base
//! population with an optional dominant user holding a fixed share.

use rand::Rng;

/// A categorical distribution over user ids.
#[derive(Debug, Clone)]
pub struct UserModel {
    /// Cumulative probabilities; `cumulative[i]` closes user `i`'s slot.
    cumulative: Vec<f64>,
}

impl UserModel {
    /// A Zipf-like population of `n_users` with exponent `alpha`
    /// (`alpha = 0` is uniform; larger is more skewed).
    pub fn zipf(n_users: usize, alpha: f64) -> Self {
        assert!(n_users > 0, "need at least one user");
        let weights: Vec<f64> = (1..=n_users).map(|k| (k as f64).powf(-alpha)).collect();
        Self::from_weights(&weights)
    }

    /// A Zipf population where user 0 additionally owns `share` of all
    /// submissions (the HPC2N shape).
    pub fn zipf_with_dominant(n_users: usize, alpha: f64, share: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&share),
            "dominant share must be in [0,1)"
        );
        assert!(n_users > 1, "a dominant user needs company");
        let mut weights: Vec<f64> = (1..=n_users).map(|k| (k as f64).powf(-alpha)).collect();
        let rest: f64 = weights.iter().skip(1).sum();
        // Scale user 0 so its final probability is exactly `share`.
        weights[0] = rest * share / (1.0 - share);
        Self::from_weights(&weights)
    }

    /// Build from arbitrary positive weights.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive total"
        );
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        UserModel { cumulative }
    }

    /// Number of users in the population.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the model has no users (never: constructors forbid it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw a user id in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let x: f64 = rng.gen();
        // First slot whose cumulative probability covers x.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite cumulative"))
        {
            Ok(i) => i as u32,
            Err(i) => (i.min(self.cumulative.len() - 1)) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn freq(model: &UserModel, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; model.len()];
        for _ in 0..n {
            counts[model.sample(&mut rng) as usize] += 1;
        }
        counts.into_iter().map(|c| c as f64 / n as f64).collect()
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let m = UserModel::zipf(4, 0.0);
        let f = freq(&m, 40_000, 1);
        for p in f {
            assert!((p - 0.25).abs() < 0.02, "p={p}");
        }
    }

    #[test]
    fn zipf_orders_users_by_popularity() {
        let m = UserModel::zipf(10, 1.2);
        let f = freq(&m, 100_000, 2);
        assert!(f[0] > f[1] && f[1] > f[2]);
        assert!(f[0] > 3.0 * f[9]);
    }

    #[test]
    fn dominant_user_gets_requested_share() {
        let m = UserModel::zipf_with_dominant(50, 1.0, 0.40);
        let f = freq(&m, 200_000, 3);
        assert!((f[0] - 0.40).abs() < 0.01, "dominant share {}", f[0]);
    }

    #[test]
    fn samples_cover_all_users() {
        let m = UserModel::zipf(5, 0.5);
        let f = freq(&m, 50_000, 4);
        assert!(f.iter().all(|&p| p > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = UserModel::zipf(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = UserModel::from_weights(&[1.0, -1.0]);
    }
}
