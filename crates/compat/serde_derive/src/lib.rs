//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without syn/quote.
//!
//! The input item is parsed directly from the `proc_macro::TokenStream`
//! (attributes skipped, field/variant names collected, types ignored —
//! the generated code lets inference pick the right `Serialize`/
//! `Deserialize` impl per field). Generics and `#[serde(...)]` attributes
//! are unsupported and rejected loudly; the workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// `struct S;`
    Unit,
    /// `struct S { a: T, b: U }` / `V { a: T }`
    Named(Vec<String>),
    /// `struct S(T, U);` / `V(T, U)`
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip any number of `#[...]` attribute groups starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub`, `pub(crate)`, `pub(in …)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past one type, stopping at a top-level `,` (angle-bracket depth
/// tracked; parenthesized/bracketed groups are atomic tokens already).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, …` bodies (struct or enum-variant braces).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                tokens[i]
            );
        };
        fields.push(name.to_string());
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        i = skip_type(&tokens, i);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    fields
}

/// Count the `Type, …` entries of a tuple body.
fn parse_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            match p.as_char() {
                ',' => i += 1,
                '=' => panic!("serde_derive shim: explicit discriminants are unsupported"),
                _ => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are unsupported (deriving {name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive shim: unsupported struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive shim: expected enum body");
            };
            Item::Enum {
                name,
                variants: parse_variants(g),
            }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ "
            ));
            out.push_str(&serialize_fields_expr(fields, "self.", None));
            out.push_str(" } }");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ match self {{ "
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(\"{vn}\".to_string()), "
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut __m = serde::Map::new(); __m.insert(\"{vn}\".to_string(), {inner}); serde::Value::Object(__m) }}, ",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let body = serialize_fields_expr(&Fields::Named(fs.clone()), "", None);
                        out.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ let mut __m = serde::Map::new(); __m.insert(\"{vn}\".to_string(), {body}); serde::Value::Object(__m) }}, "
                        ));
                    }
                }
            }
            out.push_str(" } } }");
        }
    }
    out
}

/// Expression producing the `Value` of a field set. `prefix` is `self.`
/// for structs and empty for bound enum-variant fields.
fn serialize_fields_expr(fields: &Fields, prefix: &str, _ctx: Option<&str>) -> String {
    match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let mut s = String::from("{ let mut __m = serde::Map::new(); ");
            for f in fs {
                s.push_str(&format!(
                    "__m.insert(\"{f}\".to_string(), serde::Serialize::to_value(&{prefix}{f})); "
                ));
            }
            s.push_str("serde::Value::Object(__m) }");
            s
        }
        Fields::Tuple(n) => {
            if *n == 1 {
                format!("serde::Serialize::to_value(&{prefix}0)")
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("serde::Serialize::to_value(&{prefix}{k})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
    }
}

fn deserialize_named_expr(type_path: &str, fs: &[String], src: &str) -> String {
    let mut s = format!(
        "{{ let __m = {src}.as_object().ok_or_else(|| serde::Error::expected(\"object\", {src}))?; Ok({type_path} {{ "
    );
    for f in fs {
        s.push_str(&format!(
            "{f}: serde::Deserialize::from_value(__m.get(\"{f}\").ok_or_else(|| serde::Error::missing_field(\"{f}\"))?)?, "
        ));
    }
    s.push_str("}) }");
    s
}

fn deserialize_tuple_expr(type_path: &str, n: usize, src: &str) -> String {
    if n == 1 {
        return format!("Ok({type_path}(serde::Deserialize::from_value({src})?))");
    }
    let mut s = format!(
        "{{ let __a = {src}.as_array().ok_or_else(|| serde::Error::expected(\"array\", {src}))?; if __a.len() != {n} {{ return Err(serde::Error::custom(\"wrong tuple length\")); }} Ok({type_path}("
    );
    for k in 0..n {
        s.push_str(&format!("serde::Deserialize::from_value(&__a[{k}])?, "));
    }
    s.push_str(")) }");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{ fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ "
            ));
            match fields {
                Fields::Unit => out.push_str(&format!("Ok({name})")),
                Fields::Named(fs) => out.push_str(&deserialize_named_expr(name, fs, "__v")),
                Fields::Tuple(n) => out.push_str(&deserialize_tuple_expr(name, *n, "__v")),
            }
            out.push_str(" } }");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{ fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{ match __v {{ "
            ));
            // Unit variants arrive as plain strings.
            out.push_str("serde::Value::String(__s) => match __s.as_str() { ");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!("\"{0}\" => Ok({name}::{0}), ", v.name));
                }
            }
            out.push_str(&format!(
                "__other => Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))), }}, "
            ));
            // Data-carrying variants arrive as single-key objects.
            out.push_str("serde::Value::Object(__m) => { let (__k, __inner) = __m.iter().next().ok_or_else(|| serde::Error::custom(\"empty enum object\"))?; match __k.as_str() { ");
            for v in variants {
                let vn = &v.name;
                let path = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {},\n",
                            deserialize_named_expr(&path, fs, "__inner")
                        ));
                    }
                    Fields::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {},\n",
                            deserialize_tuple_expr(&path, *n, "__inner")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "__other => Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))), }} }}, "
            ));
            out.push_str(&format!(
                "__other => Err(serde::Error::expected(\"enum representation for {name}\", __other)), }} }} }}"
            ));
        }
    }
    out
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
