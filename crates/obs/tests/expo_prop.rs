//! Property tests for the Prometheus-style text exposition.
//!
//! `encode_text` is the scrape boundary: whatever a registry holds
//! must come back out of the text losslessly, or dashboards silently
//! lie. The properties here build arbitrary registries — counter /
//! gauge / histogram mixes, label values that need every escape rule —
//! encode them, re-parse the text with an independent mini-parser, and
//! assert:
//!
//! * every snapshot sample appears in the text exactly once, with its
//!   name, unescaped labels, and exact value (gauges compare by bits);
//! * histogram `_bucket` lines are cumulative and monotone with
//!   strictly increasing `le` bounds, the `+Inf` bucket equals
//!   `_count`, and the per-bucket deltas recover the snapshot's sparse
//!   buckets exactly — i.e. bucket counts sum to the total.

use proptest::prelude::*;
use rlsched_obs::{bucket_upper, encode_text, MetricValue, Registry};

/// Name pool with a fixed kind per name (0 = counter, 1 = gauge,
/// 2 = histogram) — a name's kind is a registry invariant, so the
/// strategy must not mix kinds under one name.
const NAMES: &[(&str, u8)] = &[
    ("rlsched_test_served_total", 0),
    ("ops_total", 0),
    ("ns:scoped_total", 0),
    ("rlsched_test_depth", 1),
    ("queue_hwm", 1),
    ("rlsched_test_latency_ns", 2),
    ("batch_rows", 2),
];

/// Label values that exercise every escape rule (`\\`, `\"`, `\n`)
/// plus the characters a naive parser trips on (`,`, `{`, `}`).
const LABEL_VALUES: &[&str] = &[
    "0",
    "shard-7",
    "",
    "quote \" inside",
    "back\\slash",
    "line\nbreak",
    "μs → ∞",
    "a,b}c{d",
];

/// Undo the exposition escaping: `\n` → newline, `\X` → X.
fn unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parse one sample line: `name value` or `name{k="v",...} value`.
/// Independent of the encoder's internals on purpose.
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, f64) {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() && chars[i] != '{' && chars[i] != ' ' {
        i += 1;
    }
    let name: String = chars[..i].iter().collect();
    let mut labels = Vec::new();
    if i < chars.len() && chars[i] == '{' {
        i += 1;
        while chars[i] != '}' {
            let mut key = String::new();
            while chars[i] != '=' {
                key.push(chars[i]);
                i += 1;
            }
            i += 1; // '='
            assert_eq!(chars[i], '"', "label value must be quoted: {line}");
            i += 1;
            let mut raw = String::new();
            while chars[i] != '"' {
                if chars[i] == '\\' {
                    raw.push('\\');
                    i += 1;
                }
                raw.push(chars[i]);
                i += 1;
            }
            i += 1; // closing quote
            labels.push((key, unescape(&raw)));
            if chars[i] == ',' {
                i += 1;
            }
        }
        i += 1; // '}'
    }
    while i < chars.len() && chars[i] == ' ' {
        i += 1;
    }
    let value: String = chars[i..].iter().collect();
    (
        name,
        labels,
        value.parse::<f64>().expect("sample value parses"),
    )
}

type Sample = (String, Vec<(String, String)>, f64);

fn samples_for<'a>(
    samples: &'a [Sample],
    name: &str,
    labels: &[(String, String)],
) -> Vec<&'a Sample> {
    samples
        .iter()
        .filter(|(n, ls, _)| n == name && ls == labels)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Registry → text → parse is lossless for every sample, and
    /// histogram bucket lines reconstruct the snapshot exactly.
    #[test]
    fn exposition_round_trips_names_labels_and_buckets(
        specs in prop::collection::vec(
            (0usize..NAMES.len(), 0usize..LABEL_VALUES.len(), 0u64..1000),
            1..20,
        ),
    ) {
        let reg = Registry::new();
        for &(ni, li, amt) in &specs {
            let (name, kind) = NAMES[ni];
            let labels: &[(&str, &str)] = &[("tag", LABEL_VALUES[li])];
            match kind {
                0 => reg.counter(name, labels).add(amt),
                1 => reg.gauge(name, labels).set(amt as f64 * 0.5 - 3.0),
                _ => {
                    let h = reg.histogram(name, labels);
                    h.record_value(amt + 1);
                    h.record_value((amt + 1) * 1000);
                }
            }
        }
        let snap = reg.snapshot();
        let text = encode_text(&snap);
        let samples: Vec<Sample> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(parse_sample)
            .collect();

        let mut accounted = 0usize;
        for m in &snap.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    let got = samples_for(&samples, &m.name, &m.labels);
                    prop_assert_eq!(got.len(), 1, "{} sampled once", &m.name);
                    prop_assert_eq!(got[0].2 as u64, *v);
                    accounted += 1;
                }
                MetricValue::Gauge(v) => {
                    let got = samples_for(&samples, &m.name, &m.labels);
                    prop_assert_eq!(got.len(), 1, "{} sampled once", &m.name);
                    // `{v:?}` is shortest-round-trip: bits survive.
                    prop_assert_eq!(got[0].2.to_bits(), v.to_bits());
                    accounted += 1;
                }
                MetricValue::Histogram(h) => {
                    let count = samples_for(&samples, &format!("{}_count", m.name), &m.labels);
                    prop_assert_eq!(count.len(), 1);
                    prop_assert_eq!(count[0].2 as u64, h.count);
                    let max = samples_for(&samples, &format!("{}_max", m.name), &m.labels);
                    prop_assert_eq!(max.len(), 1);
                    prop_assert_eq!(max[0].2 as u64, h.max_ns);

                    // Bucket lines for this sample: same labels plus `le`.
                    let bname = format!("{}_bucket", m.name);
                    let bl: Vec<(f64, f64)> = samples
                        .iter()
                        .filter(|(n, ls, _)| {
                            *n == bname
                                && ls.iter().filter(|(k, _)| k != "le").count() == m.labels.len()
                                && m.labels.iter().all(|l| ls.contains(l))
                        })
                        .map(|(_, ls, v)| {
                            let le = ls.iter().find(|(k, _)| k == "le").expect("le label");
                            (le.1.parse::<f64>().expect("le parses"), *v)
                        })
                        .collect();
                    // One line per non-empty bucket, plus +Inf; `le`
                    // strictly increasing, counts cumulative.
                    prop_assert_eq!(bl.len(), h.buckets.len() + 1);
                    let mut cum = 0u64;
                    let mut prev_le = -1.0f64;
                    for (&(le, v), &(idx, c)) in bl.iter().zip(&h.buckets) {
                        prop_assert!(le > prev_le, "le bounds must increase");
                        prev_le = le;
                        prop_assert_eq!(le as u64, bucket_upper(idx as usize));
                        cum += c;
                        prop_assert_eq!(v as u64, cum, "buckets are cumulative");
                    }
                    let (inf_le, inf_v) = bl[bl.len() - 1];
                    prop_assert!(inf_le.is_infinite() && inf_le > 0.0);
                    prop_assert_eq!(
                        inf_v as u64, h.count,
                        "bucket counts must sum to the total"
                    );
                    accounted += bl.len() + 2;
                }
            }
        }
        // Nothing in the text beyond what the snapshot explains.
        prop_assert_eq!(accounted, samples.len());
    }
}
