//! The environment abstraction: a masked discrete-action episodic
//! environment, the SchedGym contract of §IV-D seen from the agent's side.
//!
//! Observations and masks flow through *caller-owned* buffers: `reset`
//! and `step` **append** one observation row and one mask row to
//! `&mut Vec<f32>`s the rollout driver reuses for every step of every
//! episode, so steady-state environment stepping performs no heap
//! allocation (the allocation-regression tests in `rlsched-bench` pin
//! this down). Appending — rather than clear-then-write — is what lets a
//! `VecEnv` hand every env the *same* stacked matrix to write its row
//! into directly, with no per-env staging copy; single-env drivers just
//! clear the buffers before each call.

/// Result of one environment step. The next observation and mask are
/// written into the buffers passed to [`Env::step`], not returned here.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Reward for the action just taken. In batch-job scheduling this is 0
    /// until the final action, which carries the whole episode metric
    /// (§IV-A of the paper).
    pub reward: f64,
    /// True when the episode just ended.
    pub done: bool,
    /// The episode's raw objective value (e.g. average bounded slowdown),
    /// reported once at `done` for logging/curves.
    pub episode_metric: Option<f64>,
}

/// A masked discrete-action episodic environment.
///
/// # Migration note (vectorized rollouts)
///
/// Two things changed in the `VecEnv` redesign:
///
/// * **Implementations**: `reset`/`step` now *append* their rows to the
///   caller's buffers instead of clearing them first (and a terminal
///   `step` appends nothing). Drop the leading `clear()`s; everything
///   else is unchanged.
/// * **Drivers**: don't hand-roll `reset`/`step` episode loops — wrap
///   the envs in a [`crate::vecenv::VecEnv`] (size 1 reproduces the old
///   behavior exactly) so every live episode's policy forward batches
///   into one stacked matmul per tick, with each env appending its row
///   directly into the stacked matrix. `&mut E` implements `Env` too, so
///   a `VecEnv` can borrow caller-owned environments. Drivers that do
///   step a single env by hand must clear the buffers between calls.
pub trait Env {
    /// Observation width (flattened).
    fn obs_dim(&self) -> usize;

    /// Action-space size (the paper's `MAX_OBSV_SIZE`, default 128).
    fn n_actions(&self) -> usize;

    /// Start a new episode derived from `seed` (the seed selects the job
    /// sequence; implementations must be reproducible). **Appends** the
    /// first observation (exactly `obs_dim` elements) and additive mask
    /// (exactly `n_actions` elements; 0 valid, very negative invalid) to
    /// the caller's buffers — existing contents are left untouched, so a
    /// vectorized driver can stack many envs' rows in one matrix.
    fn reset(&mut self, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>);

    /// Apply an action. When the episode continues, **appends** the next
    /// observation and mask rows to the caller's buffers (exactly
    /// `obs_dim` / `n_actions` elements); when the returned outcome has
    /// `done == true`, appends **nothing**. Implementations must not
    /// allocate at steady state.
    fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome;
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;

    /// A tiny bandit-style environment for substrate tests: `n_actions`
    /// arms, reward = arm index / n (higher arm, higher reward), episode
    /// length fixed. The optimal policy always picks the last arm; some
    /// arms are masked off to exercise masking.
    pub struct BanditEnv {
        pub n_actions: usize,
        pub episode_len: usize,
        pub t: usize,
        pub masked: Vec<usize>,
        pub acc: f64,
    }

    impl BanditEnv {
        pub fn new(n_actions: usize, episode_len: usize, masked: Vec<usize>) -> Self {
            BanditEnv {
                n_actions,
                episode_len,
                t: 0,
                masked,
                acc: 0.0,
            }
        }

        fn write_obs(&self, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
            obs.push(self.t as f32 / self.episode_len as f32);
            obs.push(1.0);
            mask.extend((0..self.n_actions).map(|i| {
                if self.masked.contains(&i) {
                    crate::categorical::MASK_OFF
                } else {
                    0.0
                }
            }));
        }
    }

    impl Env for BanditEnv {
        fn obs_dim(&self) -> usize {
            2
        }
        fn n_actions(&self) -> usize {
            self.n_actions
        }
        fn reset(&mut self, _seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
            self.t = 0;
            self.acc = 0.0;
            self.write_obs(obs, mask);
        }
        fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome {
            assert!(!self.masked.contains(&action), "masked action selected");
            self.t += 1;
            self.acc += action as f64 / self.n_actions as f64;
            let done = self.t >= self.episode_len;
            if !done {
                self.write_obs(obs, mask);
            }
            StepOutcome {
                reward: if done { self.acc } else { 0.0 },
                done,
                episode_metric: if done { Some(self.acc) } else { None },
            }
        }
    }
}
