//! Reward functions (§IV-A of the paper).
//!
//! "Reward is a function addressing a user-given optimization goal. For
//! instance, if the optimization goal is to minimize average bounded
//! slowdown, the reward can simply be `reward = −bsld`; … if the goal is
//! to maximize resource utilization, the reward can be `reward = util`."
//!
//! All metrics are computable only once the whole sequence is scheduled,
//! so intermediate actions receive reward 0 and the final action carries
//! the full value — "this does not affect RL training as only the
//! accumulated rewards are used".
//!
//! The fairness objectives of §V-F are conjugated metrics: a per-user
//! aggregation (the `Maximal` aggregator) applied over per-user average
//! bounded slowdowns.

use rlsched_sim::{EpisodeMetrics, MetricKind};
use serde::{Deserialize, Serialize};

/// A trainable optimization goal: a metric plus its orientation, with a
/// reward scale to keep value-network targets in a tractable range
/// (slowdowns reach 10⁴–10⁵ on bursty traces; advantages are normalized
/// per batch, but the critic regresses raw magnitudes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// The metric to optimize.
    pub metric: MetricKind,
    /// Multiplier applied to the signed metric to form the reward.
    pub scale: f64,
}

impl Objective {
    /// An objective with the metric's default scale.
    pub fn new(metric: MetricKind) -> Self {
        let scale = match metric {
            // Slowdown-type metrics span 1..~1e5.
            MetricKind::BoundedSlowdown | MetricKind::Slowdown => 0.01,
            MetricKind::FairMaxBoundedSlowdown => 0.01,
            // Seconds-type metrics span 0..~1e6.
            MetricKind::WaitTime | MetricKind::Turnaround => 1e-4,
            // Utilization is already in [0, 1].
            MetricKind::Utilization => 1.0,
        };
        Objective { metric, scale }
    }

    /// The reward for a finished episode: `+metric` for maximization
    /// goals, `−metric` otherwise, times the scale.
    pub fn reward(&self, m: &EpisodeMetrics) -> f64 {
        let v = m.metric(self.metric);
        let signed = if self.metric.maximize() { v } else { -v };
        signed * self.scale
    }

    /// The raw (unscaled, unsigned) metric value, for curves and tables.
    pub fn raw(&self, m: &EpisodeMetrics) -> f64 {
        m.metric(self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_sim::JobOutcome;

    fn metrics() -> EpisodeMetrics {
        // One job: submit 0, start 100, end 200 => wait 100, exec 100:
        // bsld 2, slowdown 2, wait 100, turnaround 200; util on 4 procs
        // with 1 proc busy 100 of 200 seconds = 0.125.
        EpisodeMetrics::new(
            vec![JobOutcome {
                job_index: 0,
                submit: 0.0,
                start: 100.0,
                end: 200.0,
                procs: 1,
                user: 3,
            }],
            4,
        )
    }

    #[test]
    fn minimization_metrics_are_negated() {
        let m = metrics();
        assert!((Objective::new(MetricKind::BoundedSlowdown).reward(&m) - (-0.02)).abs() < 1e-12);
        assert!((Objective::new(MetricKind::WaitTime).reward(&m) - (-0.01)).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_positive_reward() {
        let m = metrics();
        let r = Objective::new(MetricKind::Utilization).reward(&m);
        assert!((r - 0.125).abs() < 1e-12);
    }

    #[test]
    fn fairness_uses_max_user_aggregate() {
        let m = EpisodeMetrics::new(
            vec![
                JobOutcome {
                    job_index: 0,
                    submit: 0.0,
                    start: 0.0,
                    end: 100.0,
                    procs: 1,
                    user: 1,
                },
                JobOutcome {
                    job_index: 1,
                    submit: 0.0,
                    start: 300.0,
                    end: 400.0,
                    procs: 1,
                    user: 2,
                },
            ],
            4,
        );
        let o = Objective::new(MetricKind::FairMaxBoundedSlowdown);
        // user 1 bsld 1, user 2 bsld 4 -> max 4, reward -0.04.
        assert!((o.reward(&m) + 0.04).abs() < 1e-12);
        assert!((o.raw(&m) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn raw_is_unsigned_unscaled() {
        let m = metrics();
        assert_eq!(Objective::new(MetricKind::Turnaround).raw(&m), 200.0);
    }
}
