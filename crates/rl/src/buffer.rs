//! Rollout storage with Generalized Advantage Estimation.
//!
//! Mirrors the Spinning Up `PPOBuffer`: during an episode, per-step
//! observations, masks, actions, rewards, value estimates and sampled
//! log-probs are appended; `finish_path` closes the episode and computes
//! GAE-λ advantages and reward-to-go returns. The batch-job reward
//! structure of the paper — zero intermediate rewards, full metric at the
//! last action (§IV-A) — is just a special case.

use rlsched_nn::Tensor;

/// One merged, advantage-normalized training batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Observations, `[n, obs_dim]`.
    pub obs: Tensor,
    /// Additive action masks, `[n, n_actions]`.
    pub masks: Tensor,
    /// Chosen actions.
    pub actions: Vec<usize>,
    /// Normalized GAE advantages.
    pub advantages: Vec<f32>,
    /// Reward-to-go returns (value-function targets).
    pub returns: Vec<f32>,
    /// Behavior-policy log-probs at sampling time.
    pub logp_old: Vec<f32>,
}

impl Batch {
    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Episode-granular rollout buffer.
#[derive(Debug, Clone)]
pub struct RolloutBuffer {
    obs_dim: usize,
    n_actions: usize,
    gamma: f64,
    lam: f64,
    obs: Vec<f32>,
    masks: Vec<f32>,
    actions: Vec<usize>,
    rewards: Vec<f64>,
    values: Vec<f64>,
    logps: Vec<f32>,
    advantages: Vec<f64>,
    returns: Vec<f64>,
    path_start: usize,
}

impl RolloutBuffer {
    /// An empty buffer for `(obs_dim, n_actions)` transitions.
    pub fn new(obs_dim: usize, n_actions: usize, gamma: f64, lam: f64) -> Self {
        RolloutBuffer {
            obs_dim,
            n_actions,
            gamma,
            lam,
            obs: Vec::new(),
            masks: Vec::new(),
            actions: Vec::new(),
            rewards: Vec::new(),
            values: Vec::new(),
            logps: Vec::new(),
            advantages: Vec::new(),
            returns: Vec::new(),
            path_start: 0,
        }
    }

    /// Append one step of the current episode.
    pub fn store(
        &mut self,
        obs: &[f32],
        mask: &[f32],
        action: usize,
        reward: f64,
        value: f64,
        logp: f32,
    ) {
        assert_eq!(obs.len(), self.obs_dim, "observation width");
        assert_eq!(mask.len(), self.n_actions, "mask width");
        assert!(action < self.n_actions, "action out of range");
        self.obs.extend_from_slice(obs);
        self.masks.extend_from_slice(mask);
        self.actions.push(action);
        self.rewards.push(reward);
        self.values.push(value);
        self.logps.push(logp);
    }

    /// Close the current episode. `last_value` bootstraps a truncated
    /// episode (0.0 for terminal states, as in scheduling episodes that
    /// always run to completion).
    pub fn finish_path(&mut self, last_value: f64) {
        let start = self.path_start;
        let end = self.rewards.len();
        assert!(end > start, "finish_path on an empty episode");
        let n = end - start;

        // GAE-λ: delta_t = r_t + γ V_{t+1} − V_t;
        // A_t = Σ_k (γλ)^k delta_{t+k}.
        let mut adv = vec![0.0f64; n];
        let mut next_adv = 0.0f64;
        for i in (0..n).rev() {
            let v = self.values[start + i];
            let next_v = if i + 1 < n {
                self.values[start + i + 1]
            } else {
                last_value
            };
            let delta = self.rewards[start + i] + self.gamma * next_v - v;
            next_adv = delta + self.gamma * self.lam * next_adv;
            adv[i] = next_adv;
        }
        self.advantages.extend_from_slice(&adv);

        // Reward-to-go returns, bootstrapped with last_value.
        let mut ret = vec![0.0f64; n];
        let mut running = last_value;
        for i in (0..n).rev() {
            running = self.rewards[start + i] + self.gamma * running;
            ret[i] = running;
        }
        self.returns.extend_from_slice(&ret);
        self.path_start = end;
    }

    /// Steps stored so far (finished or not).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Sum of rewards of all finished episodes.
    pub fn total_reward(&self) -> f64 {
        self.rewards[..self.path_start].iter().sum()
    }

    /// Merge finished episodes from several buffers into one training
    /// batch, normalizing advantages to zero mean / unit variance across
    /// the whole batch (the Spinning Up "advantage normalization trick").
    pub fn into_batch(buffers: Vec<RolloutBuffer>) -> Batch {
        assert!(!buffers.is_empty());
        let obs_dim = buffers[0].obs_dim;
        let n_actions = buffers[0].n_actions;
        let mut obs = Vec::new();
        let mut masks = Vec::new();
        let mut actions = Vec::new();
        let mut advantages: Vec<f64> = Vec::new();
        let mut returns = Vec::new();
        let mut logp_old = Vec::new();
        for b in &buffers {
            assert_eq!(b.obs_dim, obs_dim);
            assert_eq!(b.n_actions, n_actions);
            assert_eq!(
                b.path_start,
                b.actions.len(),
                "all episodes must be finished before batching"
            );
            let n = b.path_start;
            obs.extend_from_slice(&b.obs[..n * obs_dim]);
            masks.extend_from_slice(&b.masks[..n * n_actions]);
            actions.extend_from_slice(&b.actions[..n]);
            advantages.extend_from_slice(&b.advantages[..n]);
            returns.extend(b.returns[..n].iter().map(|&r| r as f32));
            logp_old.extend_from_slice(&b.logps[..n]);
        }
        let n = actions.len();
        assert!(n > 0, "empty batch");

        let mean = advantages.iter().sum::<f64>() / n as f64;
        let var = advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt().max(1e-8);
        let advantages: Vec<f32> = advantages
            .iter()
            .map(|a| ((a - mean) / std) as f32)
            .collect();

        Batch {
            obs: Tensor::from_vec(obs, &[n, obs_dim]),
            masks: Tensor::from_vec(masks, &[n, n_actions]),
            actions,
            advantages,
            returns,
            logp_old,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_buffer(rewards: &[f64], values: &[f64], gamma: f64, lam: f64) -> RolloutBuffer {
        let mut b = RolloutBuffer::new(2, 3, gamma, lam);
        for (i, (&r, &v)) in rewards.iter().zip(values).enumerate() {
            b.store(&[i as f32, 0.0], &[0.0, 0.0, 0.0], i % 3, r, v, -1.0);
        }
        b.finish_path(0.0);
        b
    }

    #[test]
    fn returns_are_rewards_to_go() {
        let b = simple_buffer(&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0], 1.0, 1.0);
        assert_eq!(b.returns, vec![6.0, 5.0, 3.0]);
    }

    #[test]
    fn discounted_returns() {
        let b = simple_buffer(&[1.0, 1.0], &[0.0, 0.0], 0.5, 1.0);
        assert_eq!(b.returns, vec![1.5, 1.0]);
    }

    #[test]
    fn gae_with_lambda_one_gamma_one_is_return_minus_value() {
        // With γ=λ=1 and terminal bootstrap 0: A_t = G_t − V_t
        // (telescoping identity).
        let rewards = [0.0, 0.0, -5.0];
        let values = [1.0, 2.0, 3.0];
        let b = simple_buffer(&rewards, &values, 1.0, 1.0);
        let expect = [-5.0 - 1.0, -5.0 - 2.0, -5.0 - 3.0];
        for (a, e) in b.advantages.iter().zip(expect) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn gae_lambda_zero_is_one_step_td() {
        // λ=0: A_t = r_t + γ V_{t+1} − V_t.
        let rewards = [1.0, 2.0];
        let values = [0.5, 0.25];
        let b = simple_buffer(&rewards, &values, 0.9, 0.0);
        let e0 = 1.0 + 0.9 * 0.25 - 0.5;
        let e1 = 2.0 + 0.0 - 0.25;
        assert!((b.advantages[0] - e0).abs() < 1e-9);
        assert!((b.advantages[1] - e1).abs() < 1e-9);
    }

    #[test]
    fn delayed_reward_structure_of_the_paper() {
        // Rewards all zero except the last step (−bsld): every action in
        // the episode receives the same return with γ=1.
        let b = simple_buffer(&[0.0, 0.0, 0.0, -42.0], &[0.0; 4], 1.0, 1.0);
        assert!(b.returns.iter().all(|&r| (r + 42.0).abs() < 1e-9));
    }

    #[test]
    fn batch_merges_and_normalizes() {
        let b1 = simple_buffer(&[0.0, -10.0], &[0.0, 0.0], 1.0, 1.0);
        let b2 = simple_buffer(&[0.0, -20.0], &[0.0, 0.0], 1.0, 1.0);
        let batch = RolloutBuffer::into_batch(vec![b1, b2]);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.obs.shape(), &[4, 2]);
        assert_eq!(batch.masks.shape(), &[4, 3]);
        let mean: f32 = batch.advantages.iter().sum::<f32>() / 4.0;
        let var: f32 = batch
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn multi_episode_buffer() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 0.0, 0.0, -0.5);
        b.store(&[1.0], &[0.0, 0.0], 1, -1.0, 0.0, -0.5);
        b.finish_path(0.0);
        b.store(&[2.0], &[0.0, 0.0], 0, -2.0, 0.0, -0.5);
        b.finish_path(0.0);
        assert_eq!(b.returns, vec![-1.0, -1.0, -2.0]);
        assert!((b.total_reward() + 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty episode")]
    fn finish_empty_path_panics() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.finish_path(0.0);
    }

    #[test]
    #[should_panic(expected = "must be finished")]
    fn unfinished_episode_cannot_batch() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 0.0, 0.0, -0.5);
        let _ = RolloutBuffer::into_batch(vec![b]);
    }

    #[test]
    #[should_panic(expected = "observation width")]
    fn store_checks_widths() {
        let mut b = RolloutBuffer::new(2, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn bootstrap_value_used_for_truncated_paths() {
        let mut b = RolloutBuffer::new(1, 2, 1.0, 1.0);
        b.store(&[0.0], &[0.0, 0.0], 0, 1.0, 0.5, -0.5);
        b.finish_path(10.0); // truncated: bootstrap with V=10
        assert_eq!(b.returns, vec![11.0]);
        // A_0 = r + γ·V_boot − V_0 = 1 + 10 − 0.5
        assert!((b.advantages[0] - 10.5).abs() < 1e-9);
    }
}
