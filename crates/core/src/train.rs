//! The training loop (§V-A of the paper): epochs of vectorized
//! trajectory collection (a lockstep `VecEnv` scoring every live episode
//! through one stacked policy forward per simulator tick) followed by
//! PPO updates, with the optional two-phase trajectory-filter schedule
//! of §IV-C.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rlsched_obs::{Counter, Gauge, Histogram, Registry};
use rlsched_rl::{collect_rollouts_par, collect_rollouts_vec, UpdateProfile, UpdateStats, VecEnv};
use rlsched_sim::SimConfig;
use rlsched_swf::JobTrace;

use crate::agent::Agent;
use crate::env::SchedulingEnv;
use crate::filter::TrajectoryFilter;

/// Trajectory-filter schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FilterMode {
    /// Train on every sampled sequence.
    Off,
    /// §IV-C two-step training: fit the SJF-metric distribution once, keep
    /// only in-range sequences for `phase1_epochs`, then open up.
    TwoPhase {
        /// Epochs restricted to the filter range.
        phase1_epochs: usize,
        /// Sequences sampled to fit the distribution.
        fit_samples: usize,
        /// Upper range bound as a multiple of the distribution mean; the
        /// paper uses 2 (`R = (median, 2·mean)`). Exposed for the
        /// filter-range ablation bench.
        hi_mult: f64,
    },
}

impl FilterMode {
    /// The paper's two-phase schedule with `R = (median, 2·mean)`.
    pub fn two_phase(phase1_epochs: usize, fit_samples: usize) -> Self {
        FilterMode::TwoPhase {
            phase1_epochs,
            fit_samples,
            hi_mult: 2.0,
        }
    }
}

/// Training-run configuration. The paper's full scale is 100 epochs of
/// 100 trajectories × 256 jobs (§V-A); the default here is that scale, and
/// the repro harness shrinks it for quick runs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Trajectories sampled per epoch.
    pub trajectories_per_epoch: usize,
    /// Jobs per trajectory.
    pub seq_len: usize,
    /// Simulator configuration (backfilling on/off).
    pub sim: SimConfig,
    /// Trajectory filtering schedule.
    pub filter: FilterMode,
    /// Base seed; every epoch/trajectory derives its own stream.
    pub seed: u64,
    /// Lockstep width: how many environment slots step in parallel
    /// through the vectorized sampler (clamped to
    /// `trajectories_per_epoch`). Slots auto-reset onto the next
    /// trajectory seed as episodes finish, so the epoch's trajectory set
    /// — and, thanks to row-count-invariant batched forwards, every
    /// collected bit — is independent of this knob; it only trades
    /// per-tick batch size against env-slot memory.
    pub n_envs: usize,
    /// Worker threads for rollout collection and the PPO update. `0`/`1`
    /// run the exact single-core paths; `>= 2` partitions each epoch's
    /// seed schedule across per-worker `VecEnv`s
    /// ([`collect_rollouts_par`]) and shards the fused backward. The
    /// parallel arms are deterministic at *any* worker count — rerunning
    /// with a different `n_threads >= 2` reproduces the curve bit for
    /// bit — but the sharded update is a different deterministic
    /// trajectory from `n_threads <= 1` for minibatches over
    /// `fused::SHARD_ROWS` rows (chunked f32 gradient reductions), so
    /// pick the arm per run, not mid-stream. `RLSCHED_THREADS` caps the
    /// actual worker pool.
    pub n_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            trajectories_per_epoch: 100,
            seq_len: 256,
            sim: SimConfig::default(),
            filter: FilterMode::Off,
            seed: 0,
            n_envs: 16,
            n_threads: 1,
        }
    }
}

/// Per-epoch training record (one point of a Fig 8–13 curve).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean raw episode metric over the epoch's trajectories (e.g. average
    /// bounded slowdown) — the vertical axis of the paper's curves.
    pub mean_metric: f64,
    /// Mean scaled episodic return.
    pub mean_return: f64,
    /// Whether the trajectory filter restricted this epoch's sampling.
    pub filtered: bool,
    /// PPO update diagnostics.
    pub update: UpdateStats,
}

/// A whole training run's curve.
pub type TrainingCurve = Vec<EpochStats>;

/// Registry handles the training loop records into once per epoch
/// (plus one phase-attributed time counter per PPO phase). Handles
/// resolve against the process-global registry
/// ([`rlsched_obs::global`]) so `rlsched-serve`'s scrape endpoint — or
/// a `--metrics-dump` at exit — sees training progress without the
/// loop threading a registry through its API. Registration happens
/// once, before the epoch loop; the hot loop only touches atomics.
struct TrainMetrics {
    epochs: Counter,
    episodes: Counter,
    steps: Counter,
    update_phase_ns: [Counter; 4],
    update_ns: Histogram,
    mean_return: Gauge,
    mean_metric: Gauge,
    approx_kl: Gauge,
    entropy: Gauge,
}

impl TrainMetrics {
    const PHASES: [&'static str; 4] = ["gather", "forward", "backward", "optimizer"];

    fn register(reg: &Registry) -> Self {
        let phase = |p: &str| reg.counter("rlsched_train_update_ns_total", &[("phase", p)]);
        TrainMetrics {
            epochs: reg.counter("rlsched_train_epochs_total", &[]),
            episodes: reg.counter("rlsched_train_episodes_total", &[]),
            steps: reg.counter("rlsched_train_steps_total", &[]),
            update_phase_ns: [
                phase(Self::PHASES[0]),
                phase(Self::PHASES[1]),
                phase(Self::PHASES[2]),
                phase(Self::PHASES[3]),
            ],
            update_ns: reg.histogram("rlsched_train_update_ns", &[]),
            mean_return: reg.gauge("rlsched_train_mean_return", &[]),
            mean_metric: reg.gauge("rlsched_train_mean_metric", &[]),
            approx_kl: reg.gauge("rlsched_train_approx_kl", &[]),
            entropy: reg.gauge("rlsched_train_entropy", &[]),
        }
    }

    fn record_epoch(
        &self,
        stats: &rlsched_rl::RolloutStats,
        update: &UpdateStats,
        prof: &UpdateProfile,
    ) {
        self.epochs.inc();
        self.episodes.add(stats.episodes as u64);
        self.steps.add(stats.steps as u64);
        let phases = [prof.gather, prof.forward, prof.backward, prof.optimizer];
        for (c, d) in self.update_phase_ns.iter().zip(phases) {
            c.add(d.as_nanos() as u64);
        }
        self.update_ns.record(prof.total());
        self.mean_return.set(stats.mean_return);
        self.mean_metric.set(stats.mean_metric());
        self.approx_kl.set(update.approx_kl);
        self.entropy.set(update.entropy as f64);
    }
}

/// Train `agent` on `trace`. Returns the per-epoch curve; the agent is
/// updated in place.
pub fn train(agent: &mut Agent, trace: &JobTrace, cfg: &TrainConfig) -> TrainingCurve {
    assert!(cfg.epochs > 0 && cfg.trajectories_per_epoch > 0);
    let trace = Arc::new(trace.clone());
    let objective = agent.objective();
    let encoder = *agent.encoder();

    let filter: Option<Arc<TrajectoryFilter>> = match cfg.filter {
        FilterMode::Off => None,
        FilterMode::TwoPhase {
            fit_samples,
            hi_mult,
            ..
        } => {
            let mut f = TrajectoryFilter::fit(
                &trace,
                cfg.seq_len,
                fit_samples,
                agent.config().metric,
                cfg.sim,
                cfg.seed ^ 0xF11E,
            );
            f.set_range(f.median(), hi_mult * f.mean());
            Some(Arc::new(f))
        }
    };

    // Lockstep env slots: far fewer than trajectories_per_epoch — slots
    // auto-reset onto the next trajectory seed as episodes finish, and
    // every tick scores all live slots through one stacked forward.
    let n_slots = cfg.n_envs.max(1).min(cfg.trajectories_per_epoch);
    let parallel = cfg.n_threads >= 2;
    let mut envs: Vec<SchedulingEnv> = if parallel {
        Vec::new() // the parallel sampler builds per-worker slots instead
    } else {
        (0..n_slots)
            .map(|_| SchedulingEnv::new(trace.clone(), cfg.seq_len, cfg.sim, encoder, objective))
            .collect()
    };
    if parallel {
        agent.ppo_mut().set_update_threads(cfg.n_threads);
    }

    let metrics = TrainMetrics::register(rlsched_obs::global());
    let mut curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        rlsched_obs::span!("train.epoch");
        let filtered = match cfg.filter {
            FilterMode::Off => false,
            FilterMode::TwoPhase { phase1_epochs, .. } => epoch < phase1_epochs,
        };
        let epoch_filter = if filtered { filter.clone() } else { None };
        for e in &mut envs {
            e.set_filter(epoch_filter.clone());
        }

        let seeds: Vec<u64> = (0..cfg.trajectories_per_epoch as u64)
            .map(|i| {
                cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9) ^ i.wrapping_mul(0x85EB_CA6B)
            })
            .collect();
        let mut prof = UpdateProfile::default();
        let (stats, update) = if parallel {
            // Partitioned seed schedule over per-worker VecEnvs, then the
            // sharded fused update — all under the configured worker
            // pool. Identical bits at any n_threads >= 2.
            rayon::with_threads(cfg.n_threads, || {
                let make_env = || {
                    let mut e =
                        SchedulingEnv::new(trace.clone(), cfg.seq_len, cfg.sim, encoder, objective);
                    e.set_filter(epoch_filter.clone());
                    e
                };
                let (batch, stats) = {
                    rlsched_obs::span!("train.rollout");
                    collect_rollouts_par(agent.ppo(), make_env, n_slots, &seeds)
                };
                (stats, agent.ppo_mut().update_profiled(&batch, &mut prof))
            })
        } else {
            let mut venv: VecEnv<&mut SchedulingEnv> = VecEnv::new(envs.iter_mut().collect());
            let (batch, stats) = {
                rlsched_obs::span!("train.rollout");
                collect_rollouts_vec(agent.ppo(), &mut venv, &seeds)
            };
            drop(venv);
            // Safety: collect_rollouts borrows the agent immutably; the
            // update needs it mutably. The borrow ends before this line.
            (stats, agent.ppo_mut().update_profiled(&batch, &mut prof))
        };
        metrics.record_epoch(&stats, &update, &prof);

        curve.push(EpochStats {
            epoch,
            mean_metric: stats.mean_metric(),
            mean_return: stats.mean_return,
            filtered,
            update,
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use crate::nets::PolicyKind;
    use crate::obs::ObsConfig;
    use rlsched_rl::PpoConfig;
    use rlsched_sim::MetricKind;
    use rlsched_swf::Job;

    /// A workload where job order matters a lot: convoys of one long job
    /// plus several short ones arriving together on a small cluster.
    fn convoy_trace(n_groups: usize) -> JobTrace {
        let mut jobs = Vec::new();
        let mut id = 0;
        for gidx in 0..n_groups {
            let t0 = gidx as f64 * 4000.0;
            id += 1;
            jobs.push(Job::new(id, t0, 2000.0, 2, 2000.0));
            for s in 0..4 {
                id += 1;
                jobs.push(Job::new(id, t0 + s as f64, 30.0, 2, 30.0));
            }
        }
        JobTrace::new(jobs, 2)
    }

    fn tiny_agent(seed: u64) -> Agent {
        Agent::new(AgentConfig {
            policy: PolicyKind::Kernel,
            obs: ObsConfig {
                max_obsv: 8,
                ..ObsConfig::default()
            },
            metric: MetricKind::BoundedSlowdown,
            ppo: PpoConfig {
                train_pi_iters: 15,
                train_v_iters: 15,
                pi_lr: 3e-3,
                vf_lr: 3e-3,
                minibatch: Some(512),
                ..PpoConfig::default()
            },
            seed,
        })
    }

    #[test]
    fn training_improves_over_initial_policy() {
        let trace = convoy_trace(40);
        let mut agent = tiny_agent(3);
        let cfg = TrainConfig {
            epochs: 12,
            trajectories_per_epoch: 12,
            seq_len: 25,
            sim: SimConfig::default(),
            filter: FilterMode::Off,
            seed: 11,
            n_envs: 8,
            n_threads: 1,
        };
        let curve = train(&mut agent, &trace, &cfg);
        assert_eq!(curve.len(), 12);
        let first = curve[..3].iter().map(|e| e.mean_metric).sum::<f64>() / 3.0;
        let last = curve[curve.len() - 3..]
            .iter()
            .map(|e| e.mean_metric)
            .sum::<f64>()
            / 3.0;
        assert!(
            last < first,
            "mean bsld should fall during training: first {first:.2} vs last {last:.2}"
        );
    }

    #[test]
    fn curve_is_deterministic_given_seeds() {
        let trace = convoy_trace(20);
        let cfg = TrainConfig {
            epochs: 2,
            trajectories_per_epoch: 6,
            seq_len: 20,
            sim: SimConfig::default(),
            filter: FilterMode::Off,
            seed: 5,
            n_envs: 8,
            n_threads: 1,
        };
        let mut a1 = tiny_agent(9);
        let c1 = train(&mut a1, &trace, &cfg);
        let mut a2 = tiny_agent(9);
        let c2 = train(&mut a2, &trace, &cfg);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x.mean_metric, y.mean_metric);
            assert_eq!(x.mean_return, y.mean_return);
        }
    }

    #[test]
    fn two_phase_filter_marks_epochs() {
        let trace = convoy_trace(30);
        let mut agent = tiny_agent(1);
        let cfg = TrainConfig {
            epochs: 4,
            trajectories_per_epoch: 4,
            seq_len: 20,
            sim: SimConfig::default(),
            filter: FilterMode::two_phase(2, 20),
            seed: 2,
            n_envs: 8,
            n_threads: 1,
        };
        let curve = train(&mut agent, &trace, &cfg);
        assert!(curve[0].filtered && curve[1].filtered);
        assert!(!curve[2].filtered && !curve[3].filtered);
    }

    #[test]
    fn update_stats_are_recorded() {
        let trace = convoy_trace(15);
        let mut agent = tiny_agent(4);
        let cfg = TrainConfig {
            epochs: 1,
            trajectories_per_epoch: 4,
            seq_len: 15,
            sim: SimConfig::default(),
            filter: FilterMode::Off,
            seed: 3,
            n_envs: 8,
            n_threads: 1,
        };
        let curve = train(&mut agent, &trace, &cfg);
        let u = &curve[0].update;
        assert!(u.pi_iters >= 1);
        assert!(u.entropy > 0.0);
        assert!(u.approx_kl.is_finite());
    }
}
