//! Allocation-regression tests: the zero-allocation fast paths are load
//! bearing (they are the PR-over-PR performance story), so pin them with
//! hard bounds from the same counting allocator the benches report with.
//!
//! Everything runs inside ONE test: the counter is process-global, so
//! concurrent tests would inflate each other's measurements.

use rlsched_bench::alloc::count_allocs;
use rlsched_rl::{collect_rollouts, ActorScratch, Env, PpoConfig};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

const SEQ_LEN: usize = 48;

fn agent() -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 16,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 3,
            train_v_iters: 3,
            minibatch: Some(256),
            ..PpoConfig::default()
        },
        seed: 5,
    })
}

fn env_for(agent: &Agent, sim: SimConfig) -> SchedulingEnv {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(512, 3));
    SchedulingEnv::new(trace, SEQ_LEN, sim, *agent.encoder(), agent.objective())
}

/// Drive one full episode with a head-of-queue policy.
fn run_episode(env: &mut SchedulingEnv, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
    env.reset(seed, obs, mask);
    while !env.step(0, obs, mask).done {}
}

/// Warm an env, then count allocations across every non-terminal step of
/// a fresh episode (the terminal step computes the episode metrics and
/// may allocate the outcome table — that is reset-scale work, not
/// stepping).
fn steady_state_step_allocs(
    env: &mut SchedulingEnv,
    obs: &mut Vec<f32>,
    mask: &mut Vec<f32>,
) -> (u64, u64) {
    run_episode(env, 1, obs, mask);
    run_episode(env, 2, obs, mask);
    env.reset(3, obs, mask);
    let mut steps = 0u64;
    let mut allocs = 0u64;
    loop {
        let mut done = false;
        let step_allocs = count_allocs(|| done = env.step(0, obs, mask).done);
        if done {
            break;
        }
        allocs += step_allocs;
        steps += 1;
    }
    (steps, allocs)
}

#[test]
fn fast_paths_do_not_regress_allocations() {
    let mut agent = agent();
    let (mut obs, mut mask) = (Vec::new(), Vec::new());

    // ---- env stepping: 0 heap allocations per step at steady state ----
    let mut env = env_for(&agent, SimConfig::default());
    let (steps, step_allocs) = steady_state_step_allocs(&mut env, &mut obs, &mut mask);
    assert!(steps >= 40, "episode long enough to be a real measurement");
    assert_eq!(
        step_allocs, 0,
        "env.step must not allocate at steady state ({step_allocs} allocations over {steps} steps)"
    );

    // Same property with EASY backfilling (exercises the reservation /
    // shadow-time path and its reusable release buffer).
    let mut bf_env = env_for(&agent, SimConfig::with_backfill());
    let (_, bf_allocs) = steady_state_step_allocs(&mut bf_env, &mut obs, &mut mask);
    assert_eq!(bf_allocs, 0, "backfilling env.step must not allocate");

    // ---- greedy decision fast path: 0 allocations ----
    env.reset(4, &mut obs, &mut mask);
    let mut scratch = ActorScratch::new();
    let _ = agent.ppo().greedy_with(&obs, &mask, &mut scratch);
    let greedy_allocs = count_allocs(|| agent.ppo().greedy_with(&obs, &mask, &mut scratch));
    assert_eq!(greedy_allocs, 0, "greedy fast path must not allocate");

    // ---- PPO update: bounded by the measured baseline ----
    let mut envs: Vec<SchedulingEnv> = (0..4).map(|_| env.clone()).collect();
    let seeds: Vec<u64> = (0..4).collect();
    let (batch, _stats) = collect_rollouts(agent.ppo(), &mut envs, &seeds);
    let _ = agent.ppo_mut().update(&batch); // warm graph pools + optimizer state
    let update_allocs = count_allocs(|| agent.ppo_mut().update(&batch));
    // Measured baseline for this configuration (3+3 iterations,
    // minibatch 256) is ~200 allocations — op metadata (`SelectCols`
    // index vectors) and per-iteration gradient collections. The bound
    // leaves ~50% headroom for noise; a real regression (e.g. losing the
    // graph buffer pool) is an order of magnitude.
    assert!(
        update_allocs <= 300,
        "Ppo::update allocations regressed: {update_allocs} > 300"
    );

    // ---- rollout collection: with the per-step terms gone, a whole
    // 4-episode round must fit a small per-episode budget ----
    let rollout_allocs = count_allocs(|| collect_rollouts(agent.ppo(), &mut envs, &seeds));
    assert!(
        rollout_allocs <= 600,
        "collect_rollouts allocations regressed: {rollout_allocs} > 600 \
         (per-step allocations must stay out of the rollout loop)"
    );
}
