//! Lightweight span tracing: RAII guards on a per-thread depth stack,
//! draining to a bounded in-memory ring of fixed-size records.
//!
//! Tracing is **off by default** and gated by the `RLSCHED_TRACE`
//! environment variable, read once per process:
//!
//! * unset / empty / `0` — disabled. A disabled span is one cached
//!   atomic load and a branch: no clock read, no allocation, no lock.
//!   This is the mode every hot path pays for, and the
//!   alloc-regression suite pins it at zero allocations.
//! * `1` or `stderr` — enabled; [`flush`] writes JSONL to stderr.
//! * anything else — enabled; [`flush`] treats the value as a file
//!   path and appends JSONL to it.
//!
//! Enabled spans read the monotonic clock twice (enter/drop) and push
//! one fixed-size record into a global ring of [`RING_CAP`] slots under
//! a mutex, overwriting the oldest when full (`dropped` counts the
//! overwritten records). Wall-clock never feeds decision math — spans
//! measure, they do not steer — so every parity suite holds
//! bit-identical with `RLSCHED_TRACE=1` (pinned in CI).
//!
//! One JSONL record per span, emitted at drop (children before
//! parents): `{"name":…,"thread":…,"depth":…,"start_ns":…,"dur_ns":…}`
//! with `start_ns` relative to the first enabled span in the process.

use std::cell::Cell;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::histogram::thread_index;

/// Ring capacity: 64 Ki spans (~3 MiB) — enough for a full quickstart
/// run; older spans are overwritten, never reallocated.
pub const RING_CAP: usize = 1 << 16;

enum Target {
    Stderr,
    File(String),
}

fn target() -> Option<&'static Target> {
    static TARGET: OnceLock<Option<Target>> = OnceLock::new();
    TARGET
        .get_or_init(|| match std::env::var("RLSCHED_TRACE") {
            Err(_) => None,
            Ok(v) if v.is_empty() || v == "0" => None,
            Ok(v) if v == "1" || v == "stderr" => Some(Target::Stderr),
            Ok(path) => Some(Target::File(path)),
        })
        .as_ref()
}

/// Whether tracing is on for this process (cached `RLSCHED_TRACE`
/// read).
#[inline]
pub fn enabled() -> bool {
    target().is_some()
}

#[derive(Clone, Copy)]
struct SpanRecord {
    name: &'static str,
    thread: u32,
    depth: u32,
    start_ns: u64,
    dur_ns: u64,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next slot to write (wraps when `buf` is at capacity).
    head: usize,
    /// Spans overwritten before any [`drain`].
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: Vec::with_capacity(RING_CAP),
            head: 0,
            dropped: 0,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An RAII span guard. Create via [`crate::span!`]; the span closes
/// (and records, when tracing is enabled) when the guard drops.
pub struct SpanGuard {
    name: &'static str,
    /// Nanoseconds since [`epoch`] at entry; `u64::MAX` when disarmed.
    start_ns: u64,
    depth: u32,
}

impl SpanGuard {
    /// Open a span. When tracing is disabled this is a cached load and
    /// a branch — no clock read, no allocation.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                name,
                start_ns: u64::MAX,
                depth: 0,
            };
        }
        let start_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128 - 1) as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            name,
            start_ns,
            depth,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.start_ns == u64::MAX {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let rec = SpanRecord {
            name: self.name,
            thread: thread_index() as u32,
            depth: self.depth,
            start_ns: self.start_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
        };
        let mut ring = ring().lock().expect("trace ring poisoned");
        if ring.buf.len() < RING_CAP {
            ring.buf.push(rec);
            ring.head = ring.buf.len() % RING_CAP;
        } else {
            let head = ring.head;
            ring.buf[head] = rec;
            ring.head = (head + 1) % RING_CAP;
            ring.dropped += 1;
        }
    }
}

/// Open a span bound to the enclosing scope:
/// `rlsched_obs::span!("serve.flush");`. No-op (one cached load) unless
/// `RLSCHED_TRACE` is set.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _rlsched_obs_span_guard = $crate::trace::SpanGuard::enter($name);
    };
}

/// Write every buffered span as JSONL (oldest first) and clear the
/// ring. Returns the number of spans written.
pub fn drain<W: Write>(w: &mut W) -> std::io::Result<u64> {
    let mut ring = ring().lock().expect("trace ring poisoned");
    let n = ring.buf.len();
    let start = if n < RING_CAP { 0 } else { ring.head };
    if ring.dropped > 0 {
        writeln!(w, "{{\"dropped_spans\":{}}}", ring.dropped)?;
    }
    for i in 0..n {
        let r = &ring.buf[(start + i) % n.max(1)];
        // Span names are static identifiers (no quotes/backslashes), so
        // the record needs no escaping.
        writeln!(
            w,
            "{{\"name\":\"{}\",\"thread\":{},\"depth\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            r.name, r.thread, r.depth, r.start_ns, r.dur_ns
        )?;
    }
    ring.buf.clear();
    ring.head = 0;
    ring.dropped = 0;
    Ok(n as u64)
}

/// Drain the ring to the target `RLSCHED_TRACE` configured (stderr or
/// an append-mode file). A no-op returning 0 when tracing is disabled.
/// Call at the end of a run — binaries and the server shutdown path do.
pub fn flush() -> std::io::Result<u64> {
    match target() {
        None => Ok(0),
        Some(Target::Stderr) => drain(&mut std::io::stderr().lock()),
        Some(Target::File(path)) => {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            drain(&mut f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `RLSCHED_TRACE` is read once per process, so enabled/disabled
    // behavior is covered across the test matrix (CI runs the suite
    // with and without it); here we pin the invariants that hold in
    // both modes.
    #[test]
    fn spans_nest_and_drain_is_idempotent() {
        {
            crate::span!("outer");
            {
                crate::span!("inner");
            }
        }
        let mut out = Vec::new();
        let first = drain(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        if enabled() {
            assert!(first >= 2);
            // Children drop (and record) before parents.
            let inner = text.find("\"name\":\"inner\"").unwrap();
            let outer = text.find("\"name\":\"outer\"").unwrap();
            assert!(inner < outer, "{text}");
            assert!(text.contains("\"depth\":1"));
        } else {
            assert_eq!(first, 0);
            assert!(text.is_empty());
        }
        let mut again = Vec::new();
        assert_eq!(drain(&mut again).unwrap(), 0);
    }
}
