//! Multi-core scaling of the two training hot loops: parallel rollout
//! collection (`collect_rollouts_par` over a partitioned seed schedule)
//! and the sharded fused PPO update, each at worker counts ∈ {1, 2, 4}
//! against the single-core baselines (`collect_rollouts_vec` and the
//! monolithic fused update). Every arm produces deterministic bits —
//! the parallel arms the *same* bits at every worker count (pinned by
//! the parity suites) — so the margins here are pure scheduling/merge
//! overhead vs parallel speedup. On a 1-core CI box the interesting
//! number is the overhead of the worker machinery at n=1 (the inline
//! path, which should be within noise of the baselines).
//!
//! The criterion shim emits `BENCH_parallel_scaling.json` for the
//! harness to track.

use criterion::{criterion_group, criterion_main, Criterion};

use rlsched_rl::{collect_rollouts_par, collect_rollouts_vec, PpoConfig, VecEnv};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind, SchedulingEnv};

const SEQ_LEN: usize = 64;
const EPISODES: usize = 12;

fn agent() -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 64,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 4,
            train_v_iters: 4,
            minibatch: Some(256),
            ..PpoConfig::default()
        },
        seed: 5,
    })
}

fn env_for(agent: &Agent) -> SchedulingEnv {
    let trace = std::sync::Arc::new(NamedWorkload::Lublin1.generate(1024, 3));
    SchedulingEnv::new(
        trace,
        SEQ_LEN,
        SimConfig::default(),
        *agent.encoder(),
        agent.objective(),
    )
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut agent = agent();
    let proto = env_for(&agent);
    let seeds: Vec<u64> = (0..EPISODES as u64).collect();

    let mut group = c.benchmark_group("parallel_scaling");

    // Baseline: the sequential lockstep sampler.
    let mut venv = VecEnv::new((0..4).map(|_| proto.clone()).collect::<Vec<_>>());
    group.bench_function("rollout_sequential", |b| {
        b.iter(|| {
            let (batch, _stats) = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);
            std::hint::black_box(batch.len())
        })
    });

    // Partitioned seed schedule over per-worker VecEnvs; identical
    // output bits at every worker count.
    for &threads in &[1usize, 2, 4] {
        group.bench_function(format!("rollout_par_t{threads}"), |b| {
            b.iter(|| {
                let (batch, _stats) = rayon::with_threads(threads, || {
                    collect_rollouts_par(agent.ppo(), || proto.clone(), 4, &seeds)
                });
                std::hint::black_box(batch.len())
            })
        });
    }

    // One batch for the update arms (fixed across iterations).
    let (batch, _stats) = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);

    // Baseline: the monolithic fused update.
    group.bench_function("update_fused_mono", |b| {
        b.iter(|| {
            std::hint::black_box(agent.ppo_mut().update_fused(&batch));
        })
    });

    // Sharded fused update: fixed 64-row chunks, tree-merged gradients;
    // identical bits at every worker count.
    for &threads in &[1usize, 2, 4] {
        group.bench_function(format!("update_sharded_t{threads}"), |b| {
            b.iter(|| {
                rayon::with_threads(threads, || {
                    std::hint::black_box(agent.ppo_mut().update_fused_sharded(&batch));
                })
            })
        });
    }

    group.finish();
}

/// Short smoke-gauge settings (the CI bench box is 1-core; the json is
/// a trend line, not a statistical claim).
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(4))
        .sample_size(10)
}
criterion_group! {name = benches; config = short_config(); targets = bench_parallel_scaling}
criterion_main!(benches);
