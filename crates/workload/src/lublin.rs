//! The Lublin–Feitelson workload model [18] ("The workload on parallel
//! supercomputers: modeling the characteristics of rigid jobs", JPDC 2003),
//! the generative model behind the paper's Lublin-1 and Lublin-2 traces.
//!
//! The model has three coupled components:
//!
//! 1. **Job size** (requested processors): a fraction of jobs is serial;
//!    parallel sizes follow a *two-stage log-uniform* (most jobs small, a
//!    tail large) with a strong bias toward powers of two.
//! 2. **Runtime**: a *hyper-gamma* mixture of a short-job and a long-job
//!    gamma component whose mixing probability decreases linearly with job
//!    size (`p = pa·n + pb`) — bigger jobs run longer.
//! 3. **Arrivals**: gamma-distributed interarrival gaps modulated by a
//!    daily cycle (rush hours arrive faster).
//!
//! Parameter values are calibrated against Table II of the RLScheduler
//! paper (see `named.rs`) rather than copied from the original C program:
//! the paper itself only specifies its two Lublin parameterizations through
//! the resulting trace moments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gamma};

use rlsched_swf::{Job, JobTrace};

use crate::dist::{two_stage_uniform, HyperGamma};
use crate::users::UserModel;

/// Relative arrival intensity per hour of day (the daily cycle of [18]):
/// mornings ramp up, afternoons peak, nights are quiet. Normalized to mean
/// 1 in [`LublinModel::new`].
const HOURLY_INTENSITY: [f64; 24] = [
    0.35, 0.25, 0.20, 0.20, 0.25, 0.35, 0.55, 0.90, 1.30, 1.60, 1.75, 1.75, 1.65, 1.70, 1.75, 1.65,
    1.55, 1.35, 1.10, 0.90, 0.75, 0.60, 0.50, 0.40,
];

/// Parameters of the Lublin–Feitelson model.
#[derive(Debug, Clone)]
pub struct LublinParams {
    /// Total processors of the modeled cluster.
    pub cluster_size: u32,
    /// Probability a job is serial (1 processor).
    pub serial_prob: f64,
    /// Probability a parallel size snaps to a power of two.
    pub pow2_prob: f64,
    /// Two-stage log-uniform: lower bound of log2(size).
    pub ulow: f64,
    /// Two-stage log-uniform: breakpoint of log2(size).
    pub umed: f64,
    /// Two-stage log-uniform: upper bound of log2(size); defaults to
    /// log2(cluster_size).
    pub uhi: f64,
    /// Probability of the low stage.
    pub uprob: f64,
    /// Short-runtime gamma component (shape, scale), seconds.
    pub gamma_short: (f64, f64),
    /// Long-runtime gamma component (shape, scale), seconds.
    pub gamma_long: (f64, f64),
    /// Runtime mixing: `p(first component) = pa * n + pb`.
    pub pa: f64,
    /// See [`LublinParams::pa`].
    pub pb: f64,
    /// Interarrival gamma (shape, scale), seconds; modulated by the cycle.
    pub arrival_gamma: (f64, f64),
    /// Maximum runtime cap, seconds (archives cap at queue limits).
    pub max_runtime: f64,
    /// Number of users in the synthetic population.
    pub n_users: usize,
    /// Zipf exponent of user popularity.
    pub user_alpha: f64,
}

impl LublinParams {
    /// The paper's Lublin-1 shape: moderate sizes (mean ≈ 22 procs on a
    /// 256-proc cluster), long runtimes (mean ≈ 4.9 ks), interarrival
    /// ≈ 771 s.
    pub fn lublin1() -> Self {
        LublinParams {
            cluster_size: 256,
            serial_prob: 0.20,
            pow2_prob: 0.75,
            ulow: 1.0,
            umed: 4.2,
            uhi: 8.0,
            uprob: 0.75,
            gamma_short: (1.5, 600.0),
            gamma_long: (3.0, 6000.0),
            pa: -0.0045,
            pb: 0.86,
            arrival_gamma: (1.0, 771.0),
            max_runtime: 7.0 * 24.0 * 3600.0,
            n_users: 64,
            user_alpha: 0.9,
        }
    }

    /// The paper's Lublin-2 shape: larger jobs (mean ≈ 39 procs), shorter
    /// runtimes (mean ≈ 1.7 ks), faster arrivals (≈ 460 s).
    pub fn lublin2() -> Self {
        LublinParams {
            cluster_size: 256,
            serial_prob: 0.10,
            pow2_prob: 0.80,
            ulow: 1.5,
            umed: 5.0,
            uhi: 8.0,
            uprob: 0.68,
            gamma_short: (1.5, 300.0),
            gamma_long: (2.0, 2600.0),
            pa: -0.0030,
            pb: 0.82,
            arrival_gamma: (1.0, 460.0),
            max_runtime: 3.0 * 24.0 * 3600.0,
            n_users: 64,
            user_alpha: 0.9,
        }
    }
}

/// A ready-to-sample Lublin model.
#[derive(Debug, Clone)]
pub struct LublinModel {
    params: LublinParams,
    runtime: HyperGamma,
    arrival: Gamma<f64>,
    users: UserModel,
    cycle: [f64; 24],
}

impl LublinModel {
    /// Validate parameters and precompute samplers.
    pub fn new(params: LublinParams) -> Self {
        assert!(params.cluster_size >= 2, "cluster too small");
        assert!(params.ulow <= params.umed && params.umed <= params.uhi);
        let runtime = HyperGamma::new(
            params.gamma_short.0,
            params.gamma_short.1,
            params.gamma_long.0,
            params.gamma_long.1,
        );
        let arrival =
            Gamma::new(params.arrival_gamma.0, params.arrival_gamma.1).expect("valid gamma");
        let users = UserModel::zipf(params.n_users, params.user_alpha);
        let mean = HOURLY_INTENSITY.iter().sum::<f64>() / 24.0;
        let mut cycle = HOURLY_INTENSITY;
        for c in &mut cycle {
            *c /= mean;
        }
        LublinModel {
            params,
            runtime,
            arrival,
            users,
            cycle,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &LublinParams {
        &self.params
    }

    fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let p = &self.params;
        if rng.gen::<f64>() < p.serial_prob {
            return 1;
        }
        let log2_size = two_stage_uniform(p.ulow, p.umed, p.uhi, p.uprob, rng);
        crate::dist::round_size(2f64.powf(log2_size), p.pow2_prob, p.cluster_size, rng)
    }

    fn sample_runtime<R: Rng + ?Sized>(&self, size: u32, rng: &mut R) -> f64 {
        let p = self.params.pa * size as f64 + self.params.pb;
        self.runtime
            .sample(p, rng)
            .clamp(1.0, self.params.max_runtime)
    }

    fn sample_gap<R: Rng + ?Sized>(&self, now: f64, rng: &mut R) -> f64 {
        let hour = ((now / 3600.0) as usize) % 24;
        // Higher intensity => proportionally shorter gaps.
        (self.arrival.sample(rng) / self.cycle[hour]).max(1e-3)
    }

    /// Generate a trace of `n` jobs, reproducibly from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> JobTrace {
        let jobs: Vec<Job> = self.stream(n, seed).collect();
        JobTrace::new(jobs, self.params.cluster_size)
    }

    /// Stream `n` jobs one at a time, reproducibly from `seed`, without
    /// materializing the trace: the iterator drives the same sequential
    /// RNG walk as [`LublinModel::generate`] (which is now implemented on
    /// top of it), so the yielded jobs are bit-identical to the generated
    /// trace's — and already in submit order, since arrival times are a
    /// running sum of positive gaps.
    pub fn stream(&self, n: usize, seed: u64) -> LublinStream<'_> {
        LublinStream {
            model: self,
            rng: StdRng::seed_from_u64(seed),
            // Start mid-morning so the daily cycle is exercised from a
            // busy region, as archive traces do.
            t: 9.0 * 3600.0,
            next: 0,
            n,
        }
    }

    /// Write a seeded `n`-job synthetic trace straight to an SWF sink in
    /// one streaming pass (constant memory): the trace-scale replay
    /// fixture generator for the offline build environment, where no
    /// archive traces exist. The emitted document parses back (via
    /// either SWF reader) to exactly the jobs of
    /// [`LublinModel::generate`] with the model's cluster size.
    pub fn write_swf<W: std::io::Write>(
        &self,
        n: usize,
        seed: u64,
        w: W,
    ) -> Result<(), rlsched_swf::SwfError> {
        let mut header = rlsched_swf::SwfHeader::default();
        header
            .fields
            .insert("MaxProcs".to_string(), self.params.cluster_size.to_string());
        rlsched_swf::write_jobs(&header, self.params.cluster_size, self.stream(n, seed), w)
    }
}

/// The streaming counterpart of [`LublinModel::generate`]: yields the
/// exact same job sequence, one record at a time.
#[derive(Debug)]
pub struct LublinStream<'a> {
    model: &'a LublinModel,
    rng: StdRng,
    t: f64,
    next: usize,
    n: usize,
}

impl Iterator for LublinStream<'_> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.next >= self.n {
            return None;
        }
        let m = self.model;
        self.t += m.sample_gap(self.t, &mut self.rng);
        let size = m.sample_size(&mut self.rng);
        let runtime = m.sample_runtime(size, &mut self.rng);
        let user = m.users.sample(&mut self.rng);
        let i = self.next;
        self.next += 1;
        // The Lublin model generates runtimes, not user estimates; as in
        // the reference setup, requested time equals the actual runtime.
        Some(Job::new(i as u32 + 1, self.t, runtime, size, runtime).with_user(user))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.next;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_swf::TraceStats;

    #[test]
    fn deterministic_given_seed() {
        let m = LublinModel::new(LublinParams::lublin1());
        let a = m.generate(200, 9);
        let b = m.generate(200, 9);
        assert_eq!(a.jobs(), b.jobs());
        let c = m.generate(200, 10);
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn lublin1_moments_near_table2() {
        let m = LublinModel::new(LublinParams::lublin1());
        let s = TraceStats::from_trace(&m.generate(10_000, 1));
        // Targets: it=771, rt=4862, nt=22. Structural sampling, so allow
        // generous tolerances; named.rs calibrates it/rt exactly.
        assert!(
            (s.mean_interarrival - 771.0).abs() / 771.0 < 0.35,
            "it={}",
            s.mean_interarrival
        );
        assert!(
            (s.mean_requested_time - 4862.0).abs() / 4862.0 < 0.35,
            "rt={}",
            s.mean_requested_time
        );
        assert!(
            (s.mean_requested_procs - 22.0).abs() / 22.0 < 0.35,
            "nt={}",
            s.mean_requested_procs
        );
    }

    #[test]
    fn lublin2_is_bigger_and_shorter_than_lublin1() {
        let m1 = LublinModel::new(LublinParams::lublin1());
        let m2 = LublinModel::new(LublinParams::lublin2());
        let s1 = TraceStats::from_trace(&m1.generate(8_000, 2));
        let s2 = TraceStats::from_trace(&m2.generate(8_000, 2));
        assert!(s2.mean_requested_procs > s1.mean_requested_procs);
        assert!(s2.mean_requested_time < s1.mean_requested_time);
        assert!(s2.mean_interarrival < s1.mean_interarrival);
    }

    #[test]
    fn sizes_respect_cluster_and_runtime_caps() {
        let p = LublinParams::lublin1();
        let cap = p.max_runtime;
        let m = LublinModel::new(p);
        let t = m.generate(5_000, 3);
        for j in t.jobs() {
            assert!(j.procs() >= 1 && j.procs() <= 256);
            assert!(j.run_time >= 1.0 && j.run_time <= cap);
            assert_eq!(j.requested_time, j.run_time);
        }
    }

    #[test]
    fn submit_times_strictly_increase() {
        let m = LublinModel::new(LublinParams::lublin2());
        let t = m.generate(2_000, 4);
        for w in t.jobs().windows(2) {
            assert!(w[1].submit_time > w[0].submit_time);
        }
    }

    #[test]
    fn pow2_bias_is_visible() {
        let m = LublinModel::new(LublinParams::lublin1());
        let s = TraceStats::from_trace(&m.generate(5_000, 5));
        assert!(s.pow2_fraction > 0.6, "pow2 fraction {}", s.pow2_fraction);
    }

    #[test]
    fn users_are_populated() {
        let m = LublinModel::new(LublinParams::lublin1());
        let t = m.generate(3_000, 6);
        let users = t.users();
        assert!(users.len() > 10, "expected a populated user base");
        assert!(users.iter().all(|&u| u >= 0));
    }

    #[test]
    fn daily_cycle_modulates_arrivals() {
        // Night hours (0-5) must show longer average gaps than peak hours
        // (9-16) on a long trace.
        let m = LublinModel::new(LublinParams::lublin1());
        let t = m.generate(20_000, 7);
        let mut night = (0.0, 0usize);
        let mut peak = (0.0, 0usize);
        for w in t.jobs().windows(2) {
            let gap = w[1].submit_time - w[0].submit_time;
            let hour = ((w[0].submit_time / 3600.0) as usize) % 24;
            if hour < 6 {
                night.0 += gap;
                night.1 += 1;
            } else if (9..17).contains(&hour) {
                peak.0 += gap;
                peak.1 += 1;
            }
        }
        let night_mean = night.0 / night.1 as f64;
        let peak_mean = peak.0 / peak.1 as f64;
        assert!(
            night_mean > 1.5 * peak_mean,
            "night {night_mean} vs peak {peak_mean}"
        );
    }

    #[test]
    fn stream_matches_generate_bit_for_bit() {
        let m = LublinModel::new(LublinParams::lublin1());
        let streamed: Vec<_> = m.stream(300, 17).collect();
        let generated = m.generate(300, 17);
        assert_eq!(streamed.as_slice(), generated.jobs());
        // Arrivals are monotone, so streaming order IS trace order.
        for w in streamed.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn write_swf_round_trips_through_both_readers() {
        let m = LublinModel::new(LublinParams::lublin2());
        let mut buf = Vec::new();
        m.write_swf(150, 3, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = rlsched_swf::parse_str(&text).unwrap();
        assert_eq!(parsed.max_procs(), m.params().cluster_size);
        assert_eq!(parsed.jobs(), m.generate(150, 3).jobs());
        let streamed: Vec<_> = rlsched_swf::StreamReader::new(text.as_bytes())
            .map(|j| j.unwrap())
            .collect();
        assert_eq!(streamed.as_slice(), parsed.jobs());
    }
}
