//! One-pass streaming simulation for trace-scale replays.
//!
//! [`crate::SchedSession`] materializes the whole trace up front — the
//! right shape for the paper's 256/1024-job training windows, but fatal
//! for replaying a multi-year archive of millions of jobs. A
//! [`StreamSession`] instead *pulls* jobs from any `Iterator<Item = Job>`
//! as virtual time passes their submit times, so resident memory is
//! bounded by the peak number of waiting jobs (plus the running set), not
//! the trace length.
//!
//! The event loop is a line-for-line mirror of [`crate::SchedSession`]:
//! per-job sanitation and cluster clamping happen at admission (the
//! streaming equivalents of `JobTrace::sanitized().clamp_to_cluster()`),
//! completions at an instant are processed before same-instant arrivals,
//! EASY backfilling uses the same shadow-time rule, and the wait queue is
//! the same [`IndexedQueue`] calendar. A job's outcome is fully
//! determined the moment it starts (start, end, submit, procs, user are
//! all known), so outcomes fold into the [`StreamMetrics`] accumulators
//! at start time and the job's record is dropped — nothing grows with
//! trace length.
//!
//! The one semantic difference: the source must be sorted by submit time
//! (SWF archives are). A regression yields
//! [`SimError::NonMonotoneArrival`] instead of silently reordering.
//!
//! Averages accumulated here sum in *start* order while
//! [`crate::EpisodeMetrics`] sums in trace order, so the two agree only
//! to floating-point tolerance. For bit-exact parity checks, enable
//! [`StreamSession::with_outcome_log`] and rebuild an `EpisodeMetrics`
//! from the logged outcomes via [`StreamSession::log_metrics`].

use std::collections::BinaryHeap;
use std::collections::HashMap;

use rlsched_swf::Job;

use crate::calendar::{IndexedQueue, QueueBackend};
use crate::error::SimError;
use crate::metrics::{EpisodeMetrics, JobOutcome, MetricKind};
use crate::policy::WaitingJob;
use crate::session::RunningJob;
use crate::session::{BackfillMode, SimConfig};

/// Streaming admission: filters unschedulable records, sanitizes and
/// clamps the rest, and hands out admission sequence numbers — exactly
/// what `JobTrace::sanitized().clamp_to_cluster()` does up front, applied
/// one job at a time. The sequence number equals the job's index in that
/// materialized trace, which is what makes stream-vs-session parity
/// checks possible.
#[derive(Debug)]
struct Admission<I: Iterator<Item = Job>> {
    inner: I,
    total_procs: u32,
    /// Next admissible job, already sanitized and clamped.
    pending: Option<Job>,
    next_seq: usize,
    exhausted: bool,
}

impl<I: Iterator<Item = Job>> Admission<I> {
    fn new(inner: I, total_procs: u32) -> Self {
        Admission {
            inner,
            total_procs,
            pending: None,
            next_seq: 0,
            exhausted: false,
        }
    }

    /// Pull from the source until an admissible job is buffered.
    fn fill(&mut self) {
        while self.pending.is_none() && !self.exhausted {
            match self.inner.next() {
                None => self.exhausted = true,
                Some(raw) => {
                    if !raw.is_schedulable() {
                        continue;
                    }
                    let mut j = raw.sanitized();
                    if j.procs() > self.total_procs {
                        j.requested_procs = self.total_procs as i64;
                    }
                    self.pending = Some(j);
                }
            }
        }
    }

    /// Submit time of the next admissible job, if any.
    fn peek_submit(&mut self) -> Option<f64> {
        self.fill();
        self.pending.as_ref().map(|j| j.submit_time)
    }

    /// Admit the buffered job, assigning its sequence number.
    fn take(&mut self) -> Option<(usize, Job)> {
        self.fill();
        self.pending.take().map(|j| {
            let seq = self.next_seq;
            self.next_seq += 1;
            (seq, j)
        })
    }

    /// True once the source is drained and nothing is buffered.
    fn is_empty(&mut self) -> bool {
        self.fill();
        self.pending.is_none()
    }
}

/// Running aggregates of the paper's metrics (§II-A3), folded one
/// [`JobOutcome`] at a time so no per-job state survives the episode.
#[derive(Debug, Clone, Default)]
pub struct StreamMetrics {
    total_procs: u32,
    n: u64,
    sum_wait: f64,
    sum_turnaround: f64,
    sum_slowdown: f64,
    sum_bounded: f64,
    /// Busy processor-seconds, for the utilization integral.
    busy: f64,
    first_submit: f64,
    last_end: f64,
    /// Per-user (sum of bounded slowdowns, job count) for the fairness
    /// aggregator. Bounded by the number of distinct users, not jobs.
    per_user: HashMap<i64, (f64, u64)>,
}

impl StreamMetrics {
    fn new(total_procs: u32) -> Self {
        StreamMetrics {
            total_procs,
            first_submit: f64::INFINITY,
            last_end: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Fold one finished-by-construction outcome into the aggregates.
    fn record(&mut self, o: &JobOutcome) {
        self.n += 1;
        self.sum_wait += o.wait();
        self.sum_turnaround += o.turnaround();
        self.sum_slowdown += o.slowdown();
        self.sum_bounded += o.bounded_slowdown();
        self.busy += o.exec() * o.procs as f64;
        self.first_submit = self.first_submit.min(o.submit);
        self.last_end = self.last_end.max(o.end);
        let e = self.per_user.entry(o.user).or_insert((0.0, 0));
        e.0 += o.bounded_slowdown();
        e.1 += 1;
    }

    /// Jobs folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    fn avg(&self, sum: f64) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            sum / self.n as f64
        }
    }

    /// Average waiting time.
    pub fn avg_waiting_time(&self) -> f64 {
        self.avg(self.sum_wait)
    }

    /// Average turnaround (response) time.
    pub fn avg_turnaround(&self) -> f64 {
        self.avg(self.sum_turnaround)
    }

    /// Average raw slowdown.
    pub fn avg_slowdown(&self) -> f64 {
        self.avg(self.sum_slowdown)
    }

    /// Average bounded slowdown — the paper's headline metric.
    pub fn avg_bounded_slowdown(&self) -> f64 {
        self.avg(self.sum_bounded)
    }

    /// Makespan: last completion minus first submission.
    pub fn makespan(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.last_end - self.first_submit
        }
    }

    /// Resource utilization over the episode span.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 {
            return 0.0;
        }
        self.busy / (span * self.total_procs as f64)
    }

    /// The worst per-user average bounded slowdown (§V-F `Maximal`).
    pub fn max_user_bounded_slowdown(&self) -> f64 {
        self.per_user
            .values()
            .map(|&(s, c)| s / c as f64)
            .fold(0.0, f64::max)
    }

    /// Evaluate a named metric, mirroring [`EpisodeMetrics::metric`].
    pub fn metric(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::WaitTime => self.avg_waiting_time(),
            MetricKind::Turnaround => self.avg_turnaround(),
            MetricKind::Slowdown => self.avg_slowdown(),
            MetricKind::BoundedSlowdown => self.avg_bounded_slowdown(),
            MetricKind::Utilization => self.utilization(),
            MetricKind::FairMaxBoundedSlowdown => self.max_user_bounded_slowdown(),
        }
    }
}

/// A one-pass scheduling episode over a job stream.
///
/// Same decision protocol as [`crate::SchedSession`] — whenever at least
/// one job waits, the caller picks a queue rank via
/// [`StreamSession::step`] — but the trace flows through: arrivals are
/// pulled on demand and a started job's record is dropped immediately.
#[derive(Debug)]
pub struct StreamSession<I: Iterator<Item = Job>> {
    source: Admission<I>,
    total_procs: u32,
    cfg: SimConfig,

    time: f64,
    free_procs: u32,
    /// Waiting jobs, keyed by slab slot; `None` slots are on the free list.
    slab: Vec<Option<(usize, Job)>>,
    free_slots: Vec<usize>,
    /// Wait queue of slab keys in FCFS order.
    queue: IndexedQueue,
    running: BinaryHeap<RunningJob>,
    started: u64,
    metrics: StreamMetrics,
    /// Optional per-job log for parity tests; unbounded, so off by default.
    outcome_log: Option<Vec<JobOutcome>>,
    /// Submit time of the last admitted job, for the monotonicity check.
    last_submit: f64,
    peak_queue: usize,
    peak_running: usize,
    /// Reused scratch for the EASY shadow-time computation.
    release_buf: Vec<(f64, u32)>,
}

impl<I: Iterator<Item = Job>> StreamSession<I> {
    /// Start a streaming episode over `source` (must be submit-sorted) on
    /// a cluster of `total_procs` processors. Errors with
    /// [`SimError::EmptyTrace`] when the stream holds no schedulable job.
    pub fn new(source: I, total_procs: u32, cfg: SimConfig) -> Result<Self, SimError> {
        let total_procs = total_procs.max(1);
        let mut s = StreamSession {
            source: Admission::new(source, total_procs),
            total_procs,
            cfg,
            time: 0.0,
            free_procs: total_procs,
            slab: Vec::with_capacity(1024),
            free_slots: Vec::with_capacity(1024),
            queue: IndexedQueue::with_capacity(1024),
            running: BinaryHeap::with_capacity(64),
            started: 0,
            metrics: StreamMetrics::new(total_procs),
            outcome_log: None,
            last_submit: f64::NEG_INFINITY,
            peak_queue: 0,
            peak_running: 0,
            release_buf: Vec::with_capacity(64),
        };
        match s.source.peek_submit() {
            None => return Err(SimError::EmptyTrace),
            Some(t0) => s.time = t0,
        }
        s.absorb_arrivals()?;
        s.advance_to_decision()?;
        Ok(s)
    }

    /// Keep a per-job outcome log (unbounded memory — parity tests only).
    pub fn with_outcome_log(mut self) -> Self {
        self.outcome_log = Some(Vec::new());
        self
    }

    /// Current virtual time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Processors currently idle.
    pub fn free_procs(&self) -> u32 {
        self.free_procs
    }

    /// Total processors in the cluster.
    pub fn total_procs(&self) -> u32 {
        self.total_procs
    }

    /// Jobs started so far.
    pub fn started_count(&self) -> u64 {
        self.started
    }

    /// Number of jobs currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Deepest the wait queue has been.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue
    }

    /// Most jobs that were ever running at once.
    pub fn peak_running(&self) -> usize {
        self.peak_running
    }

    /// True once no decision is pending and no future arrival can create
    /// one: the episode is over (running jobs finish unattended).
    pub fn done(&self) -> bool {
        self.queue.is_empty() && self.source.pending.is_none() && self.source.exhausted
    }

    /// The metric aggregates folded so far (complete once [`done`]).
    ///
    /// [`done`]: StreamSession::done
    pub fn metrics(&self) -> &StreamMetrics {
        &self.metrics
    }

    /// Rebuild an [`EpisodeMetrics`] from the outcome log (sorted into
    /// trace order), for bit-exact comparison against a materialized
    /// session. Returns `None` unless [`StreamSession::with_outcome_log`]
    /// was enabled.
    pub fn log_metrics(&self) -> Option<EpisodeMetrics> {
        let log = self.outcome_log.as_ref()?;
        let mut outcomes = log.clone();
        outcomes.sort_unstable_by_key(|o| o.job_index);
        Some(EpisodeMetrics::new(outcomes, self.total_procs))
    }

    /// The waiting jobs as a policy sees them, FCFS order. `job_index` is
    /// the admission sequence number (== the trace index a materialized
    /// session would report).
    pub fn waiting(&self) -> impl Iterator<Item = WaitingJob<'_>> + '_ {
        self.queue.iter().map(move |key| {
            let (seq, job) = self.slab[key].as_ref().expect("queued slab slot is live");
            WaitingJob {
                job,
                job_index: *seq,
                wait: self.time - job.submit_time,
                can_run_now: job.procs() <= self.free_procs,
            }
        })
    }

    /// Admit one job into the slab and wait queue.
    fn admit(&mut self, seq: usize, job: Job) -> Result<(), SimError> {
        if job.submit_time < self.last_submit {
            return Err(SimError::NonMonotoneArrival { seq });
        }
        self.last_submit = job.submit_time;
        let key = match self.free_slots.pop() {
            Some(k) => {
                self.slab[k] = Some((seq, job));
                k
            }
            None => {
                self.slab.push(Some((seq, job)));
                self.slab.len() - 1
            }
        };
        self.queue.push_back(key);
        self.peak_queue = self.peak_queue.max(self.queue.len());
        Ok(())
    }

    /// Pull every arrival with `submit_time <= self.time` into the queue.
    fn absorb_arrivals(&mut self) -> Result<(), SimError> {
        while let Some(submit) = self.source.peek_submit() {
            if submit > self.time {
                break;
            }
            let (seq, job) = self.source.take().expect("peeked arrival exists");
            self.admit(seq, job)?;
        }
        Ok(())
    }

    /// Start the job in slab slot `key` at the current time, folding its
    /// (now fully determined) outcome into the aggregates and freeing the
    /// slot.
    fn start_job(&mut self, key: usize) {
        let (seq, job) = self.slab[key].take().expect("starting a live slab slot");
        self.free_slots.push(key);
        let procs = job.procs();
        debug_assert!(
            procs <= self.free_procs,
            "start_job must only run when the job fits"
        );
        self.free_procs -= procs;
        let start = self.time;
        let end = start + job.actual_runtime();
        self.running.push(RunningJob {
            end_time: end,
            est_end_time: start + job.time_bound(),
            job_index: seq,
            procs,
        });
        self.peak_running = self.peak_running.max(self.running.len());
        let outcome = JobOutcome {
            job_index: seq,
            submit: job.submit_time,
            start,
            end,
            procs,
            user: job.user_id,
        };
        self.metrics.record(&outcome);
        if let Some(log) = &mut self.outcome_log {
            log.push(outcome);
        }
        self.started += 1;
        debug_assert!(self.free_procs <= self.total_procs);
    }

    /// Advance to the next event (earliest of next completion and next
    /// arrival); completions first, as in `SchedSession`. Returns `false`
    /// when no event remains.
    fn advance_one_event(&mut self) -> Result<bool, SimError> {
        let next_completion = self.running.peek().map(|r| r.end_time);
        let next_arrival = self.source.peek_submit();
        let t = match (next_completion, next_arrival) {
            (Some(c), Some(a)) => c.min(a),
            (Some(c), None) => c,
            (None, Some(a)) => a,
            (None, None) => return Ok(false),
        };
        self.time = self.time.max(t);
        while let Some(r) = self.running.peek() {
            if r.end_time <= self.time {
                let r = self.running.pop().expect("peeked entry exists");
                self.free_procs += r.procs;
                debug_assert!(self.free_procs <= self.total_procs);
            } else {
                break;
            }
        }
        self.absorb_arrivals()?;
        Ok(true)
    }

    /// Advance through events until a decision is pending or the stream is
    /// exhausted.
    fn advance_to_decision(&mut self) -> Result<(), SimError> {
        while self.queue.is_empty() && !self.source.is_empty() {
            let advanced = self.advance_one_event()?;
            debug_assert!(advanced, "pending arrivals imply a next event");
            if !advanced {
                break;
            }
        }
        Ok(())
    }

    /// EASY shadow time for a blocked job needing `needed` processors:
    /// earliest time enough processors free up by *requested* completions.
    fn estimated_start(&mut self, needed: u32) -> f64 {
        if needed <= self.free_procs {
            return self.time;
        }
        let mut releases = std::mem::take(&mut self.release_buf);
        releases.clear();
        releases.extend(self.running.iter().map(|r| (r.est_end_time, r.procs)));
        releases.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite estimates"));
        let mut free = self.free_procs;
        let mut shadow = None;
        for &(t, p) in &releases {
            free += p;
            if free >= needed {
                shadow = Some(t);
                break;
            }
        }
        self.release_buf = releases;
        shadow.unwrap_or_else(|| {
            self.running
                .iter()
                .map(|r| r.est_end_time)
                .fold(self.time, f64::max)
        })
    }

    /// EASY backfilling pass, identical to the materialized session's.
    fn backfill_pass(&mut self, shadow_start: f64) {
        loop {
            let mut started_any = false;
            let mut rank = 0;
            while rank < self.queue.len() {
                let key = self.queue.get(rank).expect("rank < len");
                let (_, job) = self.slab[key].as_ref().expect("queued slab slot is live");
                let fits = job.procs() <= self.free_procs;
                let finishes_in_hole = self.time + job.time_bound() <= shadow_start;
                if fits && finishes_in_hole {
                    self.queue.remove_at(rank);
                    self.start_job(key);
                    started_any = true;
                } else {
                    rank += 1;
                }
            }
            if !started_any {
                break;
            }
        }
    }

    /// Schedule the waiting job at queue rank `pos` (FCFS order), exactly
    /// as [`crate::SchedSession::step`] would.
    pub fn step(&mut self, pos: usize) -> Result<(), SimError> {
        if self.queue.is_empty() {
            return Err(SimError::EmptyQueue);
        }
        if pos >= self.queue.len() {
            return Err(SimError::BadQueuePosition {
                pos,
                queue_len: self.queue.len(),
            });
        }
        let key = self.queue.remove_at(pos);
        let needed = self.slab[key]
            .as_ref()
            .expect("selected slot live")
            .1
            .procs();

        if needed <= self.free_procs {
            self.start_job(key);
        } else {
            let shadow = self.estimated_start(needed);
            while needed > self.free_procs {
                if self.cfg.backfill == BackfillMode::Easy {
                    self.backfill_pass(shadow);
                }
                if needed <= self.free_procs {
                    break;
                }
                let advanced = self.advance_one_event()?;
                debug_assert!(
                    advanced || needed <= self.free_procs,
                    "reserved job must eventually fit: events exhausted while blocked"
                );
                if !advanced {
                    break;
                }
            }
            self.start_job(key);
        }

        self.advance_to_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SchedSession;
    use rand::prelude::*;
    use rlsched_swf::JobTrace;

    fn random_jobs(seed: u64, n: usize) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                t += rng.gen_range(0.0..30.0);
                Job::new(
                    i as u32 + 1,
                    t,
                    rng.gen_range(1.0..200.0),
                    rng.gen_range(1..=8),
                    rng.gen_range(1.0..250.0),
                )
                .with_user(rng.gen_range(0..5))
            })
            .collect()
    }

    fn run_both_fcfs(
        jobs: Vec<Job>,
        procs: u32,
        cfg: SimConfig,
    ) -> (EpisodeMetrics, EpisodeMetrics, StreamMetrics) {
        let trace = JobTrace::new(jobs.clone(), procs);
        let mut sess = SchedSession::new(&trace, cfg).unwrap();
        while !sess.done() {
            sess.step(0).unwrap();
        }
        let mut stream = StreamSession::new(jobs.into_iter(), procs, cfg)
            .unwrap()
            .with_outcome_log();
        while !stream.done() {
            stream.step(0).unwrap();
        }
        (
            sess.metrics().unwrap(),
            stream.log_metrics().unwrap(),
            stream.metrics().clone(),
        )
    }

    #[test]
    fn matches_materialized_session_bit_for_bit() {
        for seed in 0..4 {
            for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
                let jobs = random_jobs(seed, 300);
                let (sess_m, stream_m, acc) = run_both_fcfs(jobs, 8, cfg);
                assert_eq!(sess_m, stream_m, "seed {seed}, cfg {cfg:?}");
                // The accumulators fold in start order, so only to tolerance.
                let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
                assert!(rel(acc.avg_bounded_slowdown(), sess_m.avg_bounded_slowdown()) < 1e-9);
                assert!(rel(acc.avg_waiting_time(), sess_m.avg_waiting_time()) < 1e-9);
                assert!(rel(acc.utilization(), sess_m.utilization()) < 1e-9);
                assert!(
                    rel(
                        acc.max_user_bounded_slowdown(),
                        sess_m.max_user_bounded_slowdown()
                    ) < 1e-9
                );
            }
        }
    }

    #[test]
    fn memory_stays_bounded_by_queue_depth() {
        // 5000 jobs trickling through a fast cluster: the slab must stay
        // near the peak queue depth, far below the trace length.
        let jobs = random_jobs(9, 5000);
        let mut s = StreamSession::new(jobs.into_iter(), 64, SimConfig::with_backfill()).unwrap();
        while !s.done() {
            s.step(0).unwrap();
        }
        assert_eq!(s.started_count(), 5000);
        assert!(
            s.slab.len() <= s.peak_queue_depth() + 1,
            "slab {} vs peak queue {}",
            s.slab.len(),
            s.peak_queue_depth()
        );
        assert!(s.peak_queue_depth() < 5000);
    }

    #[test]
    fn unsorted_stream_is_rejected() {
        // The regression is two jobs in: absorbed at the same decision
        // point, so the error surfaces at construction.
        let jobs = vec![
            Job::new(1, 100.0, 10.0, 1, 10.0),
            Job::new(2, 5.0, 10.0, 1, 10.0),
        ];
        assert_eq!(
            StreamSession::new(jobs.into_iter(), 4, SimConfig::default()).unwrap_err(),
            SimError::NonMonotoneArrival { seq: 1 }
        );
        // A later regression surfaces from step() while replaying.
        let jobs = vec![
            Job::new(1, 0.0, 500.0, 4, 500.0),
            Job::new(2, 100.0, 10.0, 1, 10.0),
            Job::new(3, 50.0, 10.0, 1, 10.0),
        ];
        let mut s = StreamSession::new(jobs.into_iter(), 4, SimConfig::default()).unwrap();
        let err = loop {
            match s.step(0) {
                Ok(()) => assert!(!s.done(), "regression went unnoticed"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, SimError::NonMonotoneArrival { seq: 2 });
    }

    #[test]
    fn empty_stream_is_rejected() {
        assert_eq!(
            StreamSession::new(std::iter::empty(), 4, SimConfig::default()).unwrap_err(),
            SimError::EmptyTrace
        );
    }

    #[test]
    fn unschedulable_records_are_skipped() {
        let mut bad = Job::new(1, 0.0, -1.0, 1, 1.0);
        bad.run_time = -1.0;
        bad.requested_procs = -1;
        bad.used_procs = -1;
        let ok = Job::new(2, 1.0, 5.0, 1, 5.0);
        let mut s = StreamSession::new(vec![bad, ok].into_iter(), 4, SimConfig::default()).unwrap();
        s.step(0).unwrap();
        assert!(s.done());
        assert_eq!(s.started_count(), 1);
        assert_eq!(s.metrics().count(), 1);
    }

    #[test]
    fn step_errors_match_session() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 1, 10.0)];
        let mut s = StreamSession::new(jobs.into_iter(), 4, SimConfig::default()).unwrap();
        assert!(matches!(
            s.step(3),
            Err(SimError::BadQueuePosition {
                pos: 3,
                queue_len: 1
            })
        ));
        s.step(0).unwrap();
        assert_eq!(s.step(0).unwrap_err(), SimError::EmptyQueue);
    }

    #[test]
    fn out_of_order_selection_matches_session() {
        // Random (seeded) selections instead of FCFS, both backfill modes.
        for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
            let jobs = random_jobs(17, 200);
            let trace = JobTrace::new(jobs.clone(), 8);
            let mut sess = SchedSession::new(&trace, cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            let mut picks = Vec::new();
            while !sess.done() {
                let p = rng.gen_range(0..sess.queue_len());
                picks.push(p);
                sess.step(p).unwrap();
            }
            let mut stream = StreamSession::new(jobs.into_iter(), 8, cfg)
                .unwrap()
                .with_outcome_log();
            for &p in &picks {
                stream.step(p).unwrap();
            }
            assert!(stream.done());
            assert_eq!(sess.metrics().unwrap(), stream.log_metrics().unwrap());
        }
    }
}
