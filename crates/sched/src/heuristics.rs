//! The priority functions of Table III, plus two auxiliary heuristics used
//! in tests and ablations.

use rlsched_sim::{Policy, QueueView, WaitingJob};

/// Which priority function a [`PriorityScheduler`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// First Come First Served: `score = s_t`.
    Fcfs,
    /// Shortest Job First (by requested runtime): `score = r_t`.
    Sjf,
    /// `score = -(w_t/r_t)^3 * n_t` (Tang et al. [3]).
    Wfp3,
    /// `score = -w_t / (log2(n_t) * r_t)` (Tang et al. [3]).
    Unicep,
    /// `score = log10(r_t)*n_t + 870*log10(s_t)` (Carastan-Santos et al. [4]).
    F1,
    /// Longest Job First — the SJF mirror, used in tests/ablations only.
    Ljf,
    /// Fewest requested processors first — used in tests/ablations only.
    SmallestFirst,
}

impl HeuristicKind {
    /// The five schedulers of Table III, in the paper's column order.
    pub fn table3() -> [HeuristicKind; 5] {
        [
            HeuristicKind::Fcfs,
            HeuristicKind::Wfp3,
            HeuristicKind::Unicep,
            HeuristicKind::Sjf,
            HeuristicKind::F1,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::Fcfs => "FCFS",
            HeuristicKind::Sjf => "SJF",
            HeuristicKind::Wfp3 => "WFP3",
            HeuristicKind::Unicep => "UNICEP",
            HeuristicKind::F1 => "F1",
            HeuristicKind::Ljf => "LJF",
            HeuristicKind::SmallestFirst => "SmallestFirst",
        }
    }

    /// The raw priority score; **smaller is scheduled first**.
    ///
    /// Guards: `log2(n)` is evaluated on `max(n, 2)` (a 1-processor job
    /// would otherwise divide by zero — the reference implementation
    /// produces `-inf`, i.e. top priority, so the clamp only softens an
    /// already-degenerate case) and `log10(s)` on `max(s, 1)` (windowed
    /// sequences start at `s = 0`).
    pub fn score(self, w: &WaitingJob<'_>) -> f64 {
        let wt = w.wait.max(0.0);
        let rt = w.job.time_bound();
        let nt = w.job.procs() as f64;
        let st = w.job.submit_time;
        match self {
            HeuristicKind::Fcfs => st,
            HeuristicKind::Sjf => rt,
            HeuristicKind::Wfp3 => -(wt / rt).powi(3) * nt,
            HeuristicKind::Unicep => -wt / ((nt.max(2.0)).log2() * rt),
            HeuristicKind::F1 => rt.log10() * nt + 870.0 * st.max(1.0).log10(),
            HeuristicKind::Ljf => -rt,
            HeuristicKind::SmallestFirst => nt,
        }
    }

    /// The priority score computed from the *wire-visible* schedule-time
    /// parts of a job — waiting time, requested runtime bound, requested
    /// processors — with no absolute clock. This is what a serving tier's
    /// heuristic fallback can evaluate from a `QueueSnapshot`, where jobs
    /// carry `wait` but not `submit_time`.
    ///
    /// Every waiting job in one decision point shares the same current
    /// time `t`, so `s_t = t - w_t` and ordering by submit time ascending
    /// is ordering by wait descending: FCFS scores `-w_t` here and picks
    /// the same job as [`HeuristicKind::score`]. All other kinds except F1
    /// read only `(w_t, r_t, n_t)` and score identically to
    /// [`HeuristicKind::score`]. F1 genuinely needs the absolute submit
    /// time (`870·log10(s_t)` is not shift-invariant) and returns `None` —
    /// callers must reject it as a fallback kind up front
    /// ([`HeuristicKind::wire_scorable`]).
    pub fn score_parts(self, wait: f64, time_bound: f64, procs: u32) -> Option<f64> {
        let wt = wait.max(0.0);
        let rt = time_bound;
        let nt = procs as f64;
        match self {
            HeuristicKind::Fcfs => Some(-wt),
            HeuristicKind::Sjf => Some(rt),
            HeuristicKind::Wfp3 => Some(-(wt / rt).powi(3) * nt),
            HeuristicKind::Unicep => Some(-wt / ((nt.max(2.0)).log2() * rt)),
            HeuristicKind::F1 => None,
            HeuristicKind::Ljf => Some(-rt),
            HeuristicKind::SmallestFirst => Some(nt),
        }
    }

    /// True when [`HeuristicKind::score_parts`] can evaluate this kind —
    /// i.e. the kind is usable as a serving-tier fallback heuristic.
    pub fn wire_scorable(self) -> bool {
        self != HeuristicKind::F1
    }
}

/// Pick the queue slot a [`PriorityScheduler`] of `kind` would schedule,
/// from wire-visible job parts `(wait, time_bound, procs)` in FCFS queue
/// order — the serving-tier fallback selector.
///
/// Decision-equivalent to [`PriorityScheduler::select`] on the same
/// queue: scores come from [`HeuristicKind::score_parts`] (identical
/// orderings, see there), and the tie-break mirrors `select`'s
/// `(score, submit_time, job_index)` key — within one decision point
/// submit ascending ⇔ wait descending, and the FCFS queue order makes
/// the slot index the final `(submit, trace-index)` tie-break.
///
/// Returns `None` when the iterator is empty or `kind` is not
/// wire-scorable (F1). Never allocates.
pub fn select_parts(
    kind: HeuristicKind,
    jobs: impl Iterator<Item = (f64, f64, u32)>,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    // (score asc, wait desc) — smaller key wins; earlier slot wins ties.
    let mut best_key = (f64::INFINITY, f64::NEG_INFINITY);
    for (slot, (wait, time_bound, procs)) in jobs.enumerate() {
        let score = kind.score_parts(wait, time_bound, procs)?;
        let key = (score, -wait);
        if best.is_none() || key.0 < best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
            best_key = key;
            best = Some(slot);
        }
    }
    best
}

/// Select the best queue rank from a *stream* of waiting jobs, using the
/// exact `(score, submit_time, job_index)` key (and strict-less tie
/// chain) of [`PriorityScheduler::select`] — one-pass replay engines walk
/// the wait queue without materializing a [`QueueView`], and this keeps
/// their decisions bit-identical to the materialized path. Never
/// allocates. Returns `None` on an empty queue.
pub fn select_streaming<'a>(
    kind: HeuristicKind,
    jobs: impl Iterator<Item = WaitingJob<'a>>,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut best_key = (f64::INFINITY, f64::INFINITY, usize::MAX);
    for (rank, w) in jobs.enumerate() {
        let key = (kind.score(&w), w.job.submit_time, w.job_index);
        if best.is_none()
            || key.0 < best_key.0
            || (key.0 == best_key.0
                && (key.1 < best_key.1 || (key.1 == best_key.1 && key.2 < best_key.2)))
        {
            best_key = key;
            best = Some(rank);
        }
    }
    best
}

/// A [`Policy`] that schedules the waiting job with the smallest priority
/// score, breaking ties by submit time then trace index (deterministic).
#[derive(Debug, Clone, Copy)]
pub struct PriorityScheduler {
    kind: HeuristicKind,
}

impl PriorityScheduler {
    /// Build a scheduler applying `kind`'s priority function.
    pub fn new(kind: HeuristicKind) -> Self {
        PriorityScheduler { kind }
    }

    /// The underlying priority function.
    pub fn kind(&self) -> HeuristicKind {
        self.kind
    }

    /// All Table III schedulers, ready to run.
    pub fn table3() -> Vec<PriorityScheduler> {
        HeuristicKind::table3().into_iter().map(Self::new).collect()
    }
}

impl Policy for PriorityScheduler {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        debug_assert!(!view.waiting.is_empty());
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, usize::MAX);
        for (i, w) in view.waiting.iter().enumerate() {
            let key = (self.kind.score(w), w.job.submit_time, w.job_index);
            if key.0 < best_key.0
                || (key.0 == best_key.0
                    && (key.1 < best_key.1 || (key.1 == best_key.1 && key.2 < best_key.2)))
            {
                best_key = key;
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_swf::Job;

    fn view_of(jobs: &[Job], time: f64, free: u32, total: u32) -> QueueView<'_> {
        QueueView {
            time,
            free_procs: free,
            total_procs: total,
            waiting: jobs
                .iter()
                .enumerate()
                .map(|(i, job)| WaitingJob {
                    job,
                    job_index: i,
                    wait: time - job.submit_time,
                    can_run_now: job.procs() <= free,
                })
                .collect(),
        }
    }

    #[test]
    fn fcfs_picks_earliest_submit() {
        let jobs = vec![
            Job::new(1, 30.0, 10.0, 1, 10.0),
            Job::new(2, 10.0, 10.0, 1, 10.0),
            Job::new(3, 20.0, 10.0, 1, 10.0),
        ];
        let v = view_of(&jobs, 40.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Fcfs).select(&v), 1);
    }

    #[test]
    fn sjf_picks_shortest_request() {
        let jobs = vec![
            Job::new(1, 0.0, 500.0, 1, 500.0),
            Job::new(2, 0.0, 50.0, 1, 50.0),
            Job::new(3, 0.0, 5000.0, 1, 5000.0),
        ];
        let v = view_of(&jobs, 0.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Sjf).select(&v), 1);
    }

    #[test]
    fn sjf_uses_requested_not_actual_runtime() {
        // Job 0 actually runs 1s but requested 1000s; job 1 actually runs
        // 500s but requested 10s. SJF must look at requests only.
        let jobs = vec![
            Job::new(1, 0.0, 1.0, 1, 1000.0),
            Job::new(2, 0.0, 500.0, 1, 10.0),
        ];
        let v = view_of(&jobs, 0.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Sjf).select(&v), 1);
    }

    #[test]
    fn wfp3_favors_long_waiting_short_jobs() {
        // Same runtime/procs; the job waiting longer wins.
        let jobs = vec![
            Job::new(1, 90.0, 10.0, 2, 100.0),
            Job::new(2, 0.0, 10.0, 2, 100.0),
        ];
        let v = view_of(&jobs, 100.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Wfp3).select(&v), 1);
    }

    #[test]
    fn wfp3_weighs_processor_count() {
        // Equal wait and runtime: more processors => more negative score
        // => scheduled first (the n_t factor scales the whole term).
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 1, 100.0),
            Job::new(2, 0.0, 10.0, 8, 100.0),
        ];
        let v = view_of(&jobs, 50.0, 8, 8);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Wfp3).select(&v), 1);
    }

    #[test]
    fn unicep_favors_fewer_procs_for_equal_wait_runtime() {
        // score = -w/(log2(n)*r): smaller n => bigger magnitude => first.
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 16, 100.0),
            Job::new(2, 0.0, 10.0, 4, 100.0),
        ];
        let v = view_of(&jobs, 50.0, 16, 16);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Unicep).select(&v), 1);
    }

    #[test]
    fn unicep_single_proc_job_does_not_panic() {
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 1, 100.0),
            Job::new(2, 0.0, 10.0, 4, 100.0),
        ];
        let v = view_of(&jobs, 50.0, 4, 4);
        let pick = PriorityScheduler::new(HeuristicKind::Unicep).select(&v);
        assert_eq!(pick, 0, "1-proc job gets top priority under the clamp");
    }

    #[test]
    fn f1_prefers_short_small_early_jobs() {
        let jobs = vec![
            Job::new(1, 0.0, 10.0, 1, 36000.0),
            Job::new(2, 0.0, 10.0, 1, 60.0),
        ];
        let v = view_of(&jobs, 0.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::F1).select(&v), 1);
        // Submit time dominates via the 870x weight: a much later job loses
        // even with a shorter runtime.
        let jobs = vec![
            Job::new(1, 1.0, 10.0, 1, 36000.0),
            Job::new(2, 100000.0, 10.0, 1, 60.0),
        ];
        let v = view_of(&jobs, 100000.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::F1).select(&v), 0);
    }

    #[test]
    fn f1_zero_submit_time_is_finite() {
        let jobs = vec![Job::new(1, 0.0, 10.0, 1, 60.0)];
        let v = view_of(&jobs, 0.0, 4, 4);
        let s = HeuristicKind::F1.score(&v.waiting[0]);
        assert!(s.is_finite());
    }

    #[test]
    fn ljf_mirrors_sjf() {
        let jobs = vec![
            Job::new(1, 0.0, 500.0, 1, 500.0),
            Job::new(2, 0.0, 50.0, 1, 50.0),
        ];
        let v = view_of(&jobs, 0.0, 4, 4);
        assert_eq!(PriorityScheduler::new(HeuristicKind::Ljf).select(&v), 0);
        assert_eq!(
            PriorityScheduler::new(HeuristicKind::SmallestFirst).select(&v),
            0
        );
    }

    #[test]
    fn ties_break_by_submit_then_index() {
        let jobs = vec![
            Job::new(2, 5.0, 10.0, 1, 10.0),
            Job::new(1, 5.0, 10.0, 1, 10.0),
        ];
        let v = view_of(&jobs, 10.0, 4, 4);
        // Equal SJF scores and submit times: the lower trace index wins.
        assert_eq!(PriorityScheduler::new(HeuristicKind::Sjf).select(&v), 0);
    }

    #[test]
    fn select_parts_matches_priority_scheduler_on_views() {
        // The wire-visible selector must pick the same slot as the full
        // PriorityScheduler for every wire-scorable kind, including under
        // score ties (equal runtimes) and wait ties (equal submits).
        let jobs = vec![
            Job::new(1, 0.0, 30.0, 4, 120.0),
            Job::new(2, 5.0, 30.0, 2, 120.0),
            Job::new(3, 5.0, 30.0, 2, 120.0),
            Job::new(4, 9.0, 80.0, 1, 90.0),
            Job::new(5, 12.0, 10.0, 8, 500.0),
        ];
        let v = view_of(&jobs, 40.0, 8, 8);
        for kind in [
            HeuristicKind::Fcfs,
            HeuristicKind::Sjf,
            HeuristicKind::Wfp3,
            HeuristicKind::Unicep,
            HeuristicKind::Ljf,
            HeuristicKind::SmallestFirst,
        ] {
            assert!(kind.wire_scorable());
            let want = PriorityScheduler::new(kind).select(&v);
            let got = select_parts(
                kind,
                v.waiting
                    .iter()
                    .map(|w| (w.wait, w.job.time_bound(), w.job.procs())),
            );
            assert_eq!(got, Some(want), "{} diverged", kind.name());
        }
    }

    #[test]
    fn select_streaming_matches_priority_scheduler() {
        // The streaming selector must agree with the materialized one for
        // every Table III kind, including under score and submit ties.
        let jobs = vec![
            Job::new(1, 0.0, 30.0, 4, 120.0),
            Job::new(2, 5.0, 30.0, 2, 120.0),
            Job::new(3, 5.0, 30.0, 2, 120.0),
            Job::new(4, 9.0, 80.0, 1, 90.0),
            Job::new(5, 12.0, 10.0, 8, 500.0),
        ];
        let v = view_of(&jobs, 40.0, 8, 8);
        for kind in HeuristicKind::table3() {
            let want = PriorityScheduler::new(kind).select(&v);
            let got = select_streaming(kind, v.waiting.iter().copied());
            assert_eq!(got, Some(want), "{} diverged", kind.name());
        }
        assert_eq!(
            select_streaming(HeuristicKind::Sjf, std::iter::empty()),
            None
        );
    }

    #[test]
    fn select_parts_rejects_f1_and_empty_queues() {
        assert!(!HeuristicKind::F1.wire_scorable());
        assert_eq!(HeuristicKind::F1.score_parts(1.0, 2.0, 3), None);
        assert_eq!(
            select_parts(HeuristicKind::F1, std::iter::once((1.0, 2.0, 3))),
            None
        );
        assert_eq!(select_parts(HeuristicKind::Sjf, std::iter::empty()), None);
    }

    #[test]
    fn table3_lists_five_named_schedulers() {
        let scheds = PriorityScheduler::table3();
        let names: Vec<&str> = scheds.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["FCFS", "WFP3", "UNICEP", "SJF", "F1"]);
    }

    #[test]
    fn full_episode_with_each_table3_scheduler() {
        use rlsched_sim::{run_episode, SimConfig};
        use rlsched_swf::JobTrace;
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                Job::new(
                    i + 1,
                    (i as f64) * 7.0,
                    30.0 + (i % 7) as f64 * 100.0,
                    1 + (i % 4),
                    40.0 + (i % 7) as f64 * 110.0,
                )
            })
            .collect();
        let t = JobTrace::new(jobs, 6);
        for mut s in PriorityScheduler::table3() {
            for cfg in [SimConfig::no_backfill(), SimConfig::with_backfill()] {
                let m = run_episode(&t, cfg, &mut s).unwrap();
                assert_eq!(m.outcomes().len(), 40, "{} scheduled all jobs", s.name());
                assert!(m.avg_bounded_slowdown() >= 1.0);
            }
        }
    }
}
