//! Checkpoint (de)serialization for parameter sets.
//!
//! The transfer experiments of the paper (Table VII: train RL-X on trace X,
//! schedule trace Y) require saving a trained model and reloading it
//! elsewhere. Parameters serialize to JSON — human-inspectable and free of
//! endianness concerns; the tensors involved are tiny.

use crate::tensor::Tensor;

/// Serialize a parameter list to a JSON string.
pub fn params_to_json(params: &[&Tensor]) -> String {
    serde_json::to_string(&params).expect("tensor serialization is infallible")
}

/// Parse a parameter list back from JSON.
pub fn params_from_json(s: &str) -> Result<Vec<Tensor>, serde_json::Error> {
    serde_json::from_str(s)
}

/// Copy a loaded parameter list into live storage, validating shapes.
pub fn load_into(targets: &mut [&mut Tensor], loaded: &[Tensor]) -> Result<(), String> {
    if targets.len() != loaded.len() {
        return Err(format!(
            "parameter count mismatch: model has {}, checkpoint has {}",
            targets.len(),
            loaded.len()
        ));
    }
    for (i, (t, l)) in targets.iter().zip(loaded).enumerate() {
        if t.shape() != l.shape() {
            return Err(format!(
                "parameter {i} shape mismatch: model {:?}, checkpoint {:?}",
                t.shape(),
                l.shape()
            ));
        }
    }
    for (t, l) in targets.iter_mut().zip(loaded) {
        **t = l.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let a = Tensor::from_vec(vec![1.5, -2.5], &[2]);
        let b = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]);
        let json = params_to_json(&[&a, &b]);
        let back = params_from_json(&json).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn load_into_validates_count() {
        let mut t = Tensor::zeros(&[2]);
        let err = load_into(&mut [&mut t], &[]).unwrap_err();
        assert!(err.contains("count mismatch"));
    }

    #[test]
    fn load_into_validates_shape() {
        let mut t = Tensor::zeros(&[2]);
        let l = Tensor::zeros(&[3]);
        let err = load_into(&mut [&mut t], &[l]).unwrap_err();
        assert!(err.contains("shape mismatch"));
    }

    #[test]
    fn load_into_copies_values() {
        let mut t = Tensor::zeros(&[2]);
        let l = Tensor::from_vec(vec![7.0, 8.0], &[2]);
        load_into(&mut [&mut t], std::slice::from_ref(&l)).unwrap();
        assert_eq!(t, l);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(params_from_json("not json").is_err());
    }
}
