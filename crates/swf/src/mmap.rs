//! Memory-mapped SWF source: a [`StreamReader`]-compatible reader over
//! an `mmap`ed file.
//!
//! A replay-scale load generator reads the trace front to back exactly
//! once; going through `read(2)` copies every byte into a userspace
//! buffer first. Mapping the file instead hands the parser the page
//! cache directly — no read syscalls, no copy — and since
//! [`std::io::Cursor`] over any `AsRef<[u8]>` implements `BufRead`,
//! the existing [`StreamReader`] runs on top unchanged. Parity with
//! the `BufReader<File>` path (jobs, headers, *and* error line
//! numbers) is pinned by the tests below and the stream-parity suite.
//!
//! On unix the mapping is a direct `mmap(PROT_READ, MAP_PRIVATE)`
//! declared by hand (no libc crate dependency); elsewhere the type
//! degrades to reading the file into a `Vec<u8>` — same interface,
//! same parity, just not zero-copy.

use std::io::Cursor;
use std::path::Path;

use crate::stream::StreamReader;

/// A read-only byte view of a whole file, `mmap`ed on unix.
///
/// Dereferences to `&[u8]`; drop unmaps.
pub struct MmapFile {
    #[cfg(unix)]
    ptr: *mut std::ffi::c_void,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    bytes: Vec<u8>,
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

impl MmapFile {
    /// Map `path` read-only.
    #[cfg(unix)]
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty file maps to an empty view.
            return Ok(MmapFile {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: a fresh read-only private mapping of a file we hold
        // open; the fd can be closed after mmap returns (the mapping
        // keeps its own reference).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MmapFile { ptr, len })
    }

    /// Read `path` into memory (the non-unix fallback; same interface).
    #[cfg(not(unix))]
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(MmapFile {
            bytes: std::fs::read(path)?,
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly
            // `len` bytes, valid until `Drop` unmaps it.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
        #[cfg(not(unix))]
        &self.bytes
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

#[cfg(unix)]
impl Drop for MmapFile {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

// SAFETY: the mapping is immutable (PROT_READ, private) for its whole
// lifetime, so shared references from any thread are fine.
#[cfg(unix)]
unsafe impl Send for MmapFile {}
#[cfg(unix)]
unsafe impl Sync for MmapFile {}

impl AsRef<[u8]> for MmapFile {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for MmapFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapFile")
            .field("len", &self.len())
            .finish()
    }
}

/// A [`StreamReader`] over a memory-mapped SWF file.
pub type MmapReader = StreamReader<Cursor<MmapFile>>;

/// Open `path` as a streaming SWF reader backed by a memory map.
pub fn stream_mmap(path: impl AsRef<Path>) -> std::io::Result<MmapReader> {
    Ok(StreamReader::new(Cursor::new(MmapFile::open(path)?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SwfError;
    use crate::job::Job;
    use std::io::BufReader;
    use std::io::Write;

    const SAMPLE: &str = "\
; Version: 2.2
; MaxProcs: 128
; a prose comment

1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1

2 10 -1 50 -1 -1 -1 8 60 -1 0 4 2 7 1 0 -1 -1
";

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("rlsched_mmap_{name}_{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn mmap_parity_with_buffered_reader() {
        let path = write_temp("parity", SAMPLE);
        let mut mapped = stream_mmap(&path).unwrap();
        let mut buffered = StreamReader::new(BufReader::new(std::fs::File::open(&path).unwrap()));
        let a: Vec<Job> = mapped.by_ref().map(|j| j.unwrap()).collect();
        let b: Vec<Job> = buffered.by_ref().map(|j| j.unwrap()).collect();
        assert_eq!(a, b);
        assert_eq!(mapped.header(), buffered.header());
        assert_eq!(mapped.max_procs(), buffered.max_procs());
        assert_eq!(mapped.line_number(), buffered.line_number());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mmap_errors_carry_the_same_line_numbers() {
        let src = "; MaxProcs: 4\n1 0 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 1 -1 -1\nbad line\n";
        let path = write_temp("err", src);
        let check = |err: SwfError| match err {
            SwfError::FieldCount { line, found } => {
                assert_eq!(line, 3);
                assert_eq!(found, 2);
            }
            other => panic!("unexpected error: {other}"),
        };
        let mut mapped = stream_mmap(&path).unwrap();
        assert!(mapped.next().unwrap().is_ok());
        check(mapped.next().unwrap().unwrap_err());
        assert!(mapped.next().is_none(), "fused after the error");
        let mut buffered = StreamReader::new(BufReader::new(std::fs::File::open(&path).unwrap()));
        assert!(buffered.next().unwrap().is_ok());
        check(buffered.next().unwrap().unwrap_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_an_empty_stream() {
        let path = write_temp("empty", "");
        let mut mapped = stream_mmap(&path).unwrap();
        assert!(mapped.next().is_none());
        assert_eq!(mapped.max_procs(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(stream_mmap("/nonexistent/definitely-not-here.swf").is_err());
    }
}
