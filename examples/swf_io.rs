//! Working with Standard Workload Format traces: generate a synthetic
//! workload, write it as SWF, parse it back, inspect its Table II-style
//! statistics, and schedule a slice of it.
//!
//! This is the integration path for real archive traces: download any SWF
//! file from the Parallel Workloads Archive, `parse_str` it, and every API
//! in this workspace accepts it.
//!
//! ```text
//! cargo run --release --example swf_io
//! ```

use rlsched_repro::sched::{HeuristicKind, PriorityScheduler};
use rlsched_repro::sim::{run_episode, SimConfig};
use rlsched_repro::swf::{parse_str, write_string, TraceStats};
use rlsched_repro::workload::NamedWorkload;

fn main() {
    // 1. Generate and serialize.
    let trace = NamedWorkload::Hpc2n.generate(800, 9);
    let text = write_string(&trace);
    println!(
        "serialized {} jobs to {} bytes of SWF",
        trace.len(),
        text.len()
    );
    println!(
        "first lines:\n{}",
        text.lines().take(4).collect::<Vec<_>>().join("\n")
    );

    // 2. Parse back (lossless) and verify.
    let parsed = parse_str(&text).expect("own output parses");
    assert_eq!(parsed.jobs(), trace.jobs(), "round trip is lossless");
    assert_eq!(parsed.max_procs(), trace.max_procs());

    // 3. Trace statistics (the Table II columns).
    let stats = TraceStats::from_trace(&parsed);
    println!("\ntrace statistics:");
    println!("  processors        {:>10}", stats.max_procs);
    println!("  mean interarrival {:>10.0} s", stats.mean_interarrival);
    println!("  mean runtime      {:>10.0} s", stats.mean_run_time);
    println!("  mean req. procs   {:>10.1}", stats.mean_requested_procs);
    println!("  users             {:>10}", stats.users);
    println!(
        "  dominant user     {:>9.0}% of jobs (HPC2N's u17 effect, §V-F)",
        100.0 * stats.max_user_jobs as f64 / stats.jobs as f64
    );

    // 4. Schedule a 200-job slice with two heuristics.
    let window = parsed.window(100, 200).expect("window");
    for kind in [HeuristicKind::Fcfs, HeuristicKind::Sjf] {
        let mut sched = PriorityScheduler::new(kind);
        let m = run_episode(&window, SimConfig::with_backfill(), &mut sched).expect("episode");
        println!(
            "\n  {} on 200 jobs: bsld {:.2}, avg wait {:.0} s, util {:.3}",
            kind.name(),
            m.avg_bounded_slowdown(),
            m.avg_waiting_time(),
            m.utilization()
        );
    }
}
