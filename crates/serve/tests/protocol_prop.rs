//! Property tests for the wire protocol and the latency accounting.
//!
//! The chaos suite exercises specific scripted failures; these
//! properties pin the frame layer for *all* payloads: every request and
//! response variant — `served_by` tags, fallback actions, error
//! messages with hostile characters — survives a write/read round trip
//! bit-exactly, frames never collide across a stream, and the
//! shard-histogram merge is associative and commutative (so the stats
//! endpoint's fold order can never change a reported quantile).

use std::time::Duration;

use proptest::pick_index;
use proptest::prelude::*;
use rlsched_obs::{HistogramSnapshot, MetricSnapshot, MetricValue, RegistrySnapshot};
use rlsched_serve::protocol::{
    encode_binary_frame, encode_json_frame, read_frame, read_frame_any, read_frame_any_into,
    write_frame,
};
use rlsched_serve::{
    LatencyHistogram, Request, Response, ServeStats, ServedBy, ShardHealth, ShardState, WireFrame,
    WireProtocol,
};
use rlscheduler::{QueueSnapshot, SnapshotJob};

/// Awkward-but-finite floats: subnormals, ulp neighbors, huge mask
/// offsets — the values most likely to shake out a formatting bug.
fn any_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        Just(0.0f32),
        Just(-0.0f32),
        Just(f32::MIN_POSITIVE / 2.0),
        Just(-1.0e9f32),
        Just(f32::from_bits(0.3f32.to_bits() + 1)),
        Just(f32::MAX),
        (-1.0e9f32..1.0e9).boxed(),
    ]
}

fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0f64), Just(1.0 / 3.0), (0.0f64..1.0e12).boxed()]
}

/// Error messages with characters that must be escaped on the wire —
/// an unescaped newline would tear the framing itself.
fn any_message() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("bad row".to_string()),
        Just("quote \" backslash \\ done".to_string()),
        Just("line\nbreak\ttab".to_string()),
        Just("unicode: μs → ∞".to_string()),
        Just("{\"Action\":{\"id\":0}}".to_string()), // a frame *inside* a message
    ]
}

/// Correlation ids: the protocol bounds them to the JSON-exact integer
/// range (< 2^53, RFC 8259 §6) — ids above it do not survive IEEE-double
/// interop, which this strategy's bound documents as a *rule*, not an
/// accident.
fn any_id() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), Just((1u64 << 53) - 1), (0u64..1 << 53).boxed(),]
}

fn any_served_by() -> impl Strategy<Value = ServedBy> {
    prop_oneof![Just(ServedBy::Model), Just(ServedBy::Fallback)]
}

fn any_shard_state() -> impl Strategy<Value = ShardState> {
    prop_oneof![
        Just(ShardState::Healthy),
        Just(ShardState::Restarting),
        Just(ShardState::Failed),
    ]
}

fn any_snapshot() -> impl Strategy<Value = QueueSnapshot> {
    FnStrategy(|rng: &mut TestRng| {
        let depth = pick_index(rng, 6);
        let jobs = (0..depth)
            .map(|i| SnapshotJob {
                wait: i as f64 * 7.5,
                time_bound: 60.0 + i as f64,
                procs: 1 + (i as u32 % 8),
                can_run_now: i % 2 == 0,
            })
            .collect();
        QueueSnapshot {
            free_procs: pick_index(rng, 64) as u32,
            total_procs: 64,
            queue_len: depth as u32,
            jobs,
        }
    })
}

fn any_request() -> impl Strategy<Value = Request> {
    let raw = (
        any_id(),
        prop::collection::vec(any_f32(), 0..24),
        prop::collection::vec(any_f32(), 0..8),
        0u64..1000,
    )
        .prop_map(|(id, obs, mask, queue_len)| Request::ScoreRaw {
            id,
            obs,
            mask,
            queue_len,
        });
    let score =
        (any_id(), any_snapshot()).prop_map(|(id, snapshot)| Request::Score { id, snapshot });
    let stats = any_id().prop_map(|id| Request::Stats { id });
    let metrics = any_id().prop_map(|id| Request::Metrics { id });
    prop_oneof![raw.boxed(), score.boxed(), stats.boxed(), metrics.boxed()]
}

fn any_health() -> impl Strategy<Value = ShardHealth> {
    (any_shard_state(), any::<u32>(), any::<u32>()).prop_map(|(state, r, p)| ShardHealth {
        state,
        restarts: r as u64,
        panics: p as u64,
    })
}

fn any_stats() -> impl Strategy<Value = ServeStats> {
    (
        prop::collection::vec(any::<u32>(), 10),
        (any_f64(), any_f64(), any_f64()),
        prop::collection::vec(any_health(), 0..5),
    )
        .prop_map(|(c, (p50_us, p99_us, max_us), shards)| ServeStats {
            served: c[0] as u64,
            fallbacks: c[1] as u64,
            shed: c[2] as u64,
            deadlines: c[3] as u64,
            batches: c[4] as u64,
            max_batch: c[5] as u64,
            swaps: c[6] as u64,
            rollbacks: c[7] as u64,
            restarts: c[8] as u64,
            accept_failures: c[9] as u64,
            p50_us,
            p99_us,
            max_us,
            shards,
        })
}

/// Gauge values must be finite: the JSON leg serializes non-finite
/// floats as `null` (RFC 8259 has no NaN/∞), so a NaN gauge cannot
/// round-trip and the registry never produces one on the serve paths.
fn any_gauge_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(1.0 / 3.0),
        Just(-4096.0f64),
        (-1.0e12f64..1.0e12).boxed(),
    ]
}

fn any_histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        any_id(),
        any_id(),
        prop::collection::vec((0u32..1920, 0u64..1 << 40), 0..12),
    )
        .prop_map(|(count, max_ns, buckets)| HistogramSnapshot {
            count,
            max_ns,
            buckets,
        })
}

/// Metric names and label values as the wire sees them — the codec
/// must carry any string, including ones the registry would reject and
/// ones the text exposition would need to escape.
fn any_label_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("shard".to_string()),
        Just("0".to_string()),
        Just("rlsched_serve_served_total".to_string()),
        Just("quote \" slash \\ nl\n".to_string()),
        Just("μ-metrics".to_string()),
    ]
}

fn any_metric_snapshot() -> impl Strategy<Value = MetricSnapshot> {
    let value = prop_oneof![
        any_id().prop_map(MetricValue::Counter).boxed(),
        any_gauge_value().prop_map(MetricValue::Gauge).boxed(),
        any_histogram_snapshot()
            .prop_map(MetricValue::Histogram)
            .boxed(),
    ];
    (
        any_label_string(),
        prop::collection::vec((any_label_string(), any_label_string()), 0..3),
        value,
    )
        .prop_map(|(name, labels, value)| MetricSnapshot {
            name,
            labels,
            value,
        })
}

fn any_registry_snapshot() -> impl Strategy<Value = RegistrySnapshot> {
    prop::collection::vec(any_metric_snapshot(), 0..6)
        .prop_map(|metrics| RegistrySnapshot { metrics })
}

fn any_response() -> impl Strategy<Value = Response> {
    let action = (any_id(), 0u64..256, 0u64..16, any_served_by()).prop_map(
        |(id, action, shard, served_by)| Response::Action {
            id,
            action,
            shard,
            served_by,
        },
    );
    let shed = any_id().prop_map(|id| Response::Shed { id });
    let stats = (any_id(), any_stats()).prop_map(|(id, stats)| Response::Stats { id, stats });
    let error = (any_id(), any_message()).prop_map(|(id, message)| Response::Error { id, message });
    let metrics = (any_id(), any_registry_snapshot())
        .prop_map(|(id, metrics)| Response::Metrics { id, metrics });
    prop_oneof![
        action.boxed(),
        shed.boxed(),
        stats.boxed(),
        error.boxed(),
        metrics.boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request variant survives the wire bit-exactly, and `f32`
    /// payload rows compare by bits, not by value (−0.0 vs 0.0, ulp
    /// neighbors).
    #[test]
    fn requests_round_trip_bit_exactly(reqs in prop::collection::vec(any_request(), 1..8)) {
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        for want in &reqs {
            let got: Request = read_frame(&mut reader).unwrap().expect("frame present");
            prop_assert_eq!(&got, want);
            if let (
                Request::ScoreRaw { obs: a, mask: ma, .. },
                Request::ScoreRaw { obs: b, mask: mb, .. },
            ) = (&got, want) {
                for (x, y) in a.iter().zip(b).chain(ma.iter().zip(mb)) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
                }
            }
        }
        prop_assert!(read_frame::<Request, _>(&mut reader).unwrap().is_none());
    }

    /// Every response variant — `served_by` tags, shard health states,
    /// hostile error messages — round-trips exactly, and a message
    /// containing newlines or embedded frames never corrupts framing
    /// for the frames that follow it.
    #[test]
    fn responses_round_trip_and_framing_survives(resps in prop::collection::vec(any_response(), 1..8)) {
        let mut buf = Vec::new();
        for r in &resps {
            write_frame(&mut buf, r).unwrap();
        }
        // One frame per line: framing is intact regardless of payload.
        let text = std::str::from_utf8(&buf).unwrap();
        prop_assert_eq!(text.lines().count(), resps.len());
        let mut reader = std::io::BufReader::new(&buf[..]);
        for want in &resps {
            let got: Response = read_frame(&mut reader).unwrap().expect("frame present");
            prop_assert_eq!(&got, want);
        }
    }

    /// Truncating any frame anywhere strictly inside it yields the
    /// transport error (`UnexpectedEof`), never a protocol error and
    /// never a silently wrong frame — the distinction the client's
    /// retry logic rides on.
    #[test]
    fn torn_frames_are_transport_errors(resp in any_response(), cut in any::<prop::sample::Index>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp).unwrap();
        // Cut strictly inside the line: keep at least 1 byte, lose at
        // least the newline.
        let keep = 1 + cut.index(buf.len() - 1);
        let torn = &buf[..keep];
        let err = read_frame::<Response, _>(&mut std::io::BufReader::new(torn))
            .expect_err("a torn frame must not parse");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    /// Every request variant survives the *binary* wire bit-exactly —
    /// same payload space as the JSON property, decoded through the
    /// format-sniffing reader.
    #[test]
    fn binary_requests_round_trip_bit_exactly(reqs in prop::collection::vec(any_request(), 1..8)) {
        let mut buf = Vec::new();
        let mut frame = Vec::new();
        for r in &reqs {
            encode_binary_frame(r, &mut frame);
            buf.extend_from_slice(&frame);
        }
        let mut reader = std::io::BufReader::new(&buf[..]);
        let (mut payload, mut line) = (Vec::new(), String::new());
        for want in &reqs {
            let (got, proto): (Request, _) =
                read_frame_any(&mut reader, &mut payload, &mut line)
                    .unwrap()
                    .expect("frame present");
            prop_assert_eq!(proto, WireProtocol::Binary);
            prop_assert_eq!(&got, want);
            if let (
                Request::ScoreRaw { obs: a, mask: ma, .. },
                Request::ScoreRaw { obs: b, mask: mb, .. },
            ) = (&got, want) {
                for (x, y) in a.iter().zip(b).chain(ma.iter().zip(mb)) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
                }
            }
        }
        prop_assert!(
            read_frame_any::<Request, _>(&mut reader, &mut payload, &mut line)
                .unwrap()
                .is_none()
        );
    }

    /// Every response variant round-trips through the binary format,
    /// and decoding *into* a reused scratch value yields exactly the
    /// owned-decode result — the server/client buffer-reuse path can
    /// never diverge from the simple path.
    #[test]
    fn binary_responses_round_trip_and_decode_into_matches(
        resps in prop::collection::vec(any_response(), 1..8),
    ) {
        let mut frame = Vec::new();
        let mut scratch = Response::scratch();
        for want in &resps {
            encode_binary_frame(want, &mut frame);
            let mut reader = std::io::BufReader::new(&frame[..]);
            let (mut payload, mut line) = (Vec::new(), String::new());
            let (owned, proto): (Response, _) =
                read_frame_any(&mut reader, &mut payload, &mut line)
                    .unwrap()
                    .expect("frame present");
            prop_assert_eq!(proto, WireProtocol::Binary);
            prop_assert_eq!(&owned, want);
            // decode_into against a scratch carrying the *previous*
            // iteration's value: stale state must be fully overwritten.
            let mut reader = std::io::BufReader::new(&frame[..]);
            read_frame_any_into(&mut reader, &mut payload, &mut line, &mut scratch)
                .unwrap()
                .expect("frame present");
            prop_assert_eq!(&scratch, want);
        }
    }

    /// JSON and binary encodings of the same value decode to the same
    /// value, and a stream interleaving the two formats sniffs each
    /// frame correctly — the per-connection negotiation is per *frame*,
    /// so a client may switch formats mid-connection.
    #[test]
    fn json_and_binary_cross_decode_equivalently(
        reqs in prop::collection::vec(any_request(), 1..6),
        flips in prop::collection::vec(any::<bool>(), 6),
    ) {
        let mut buf = Vec::new();
        let mut frame = Vec::new();
        let protos: Vec<WireProtocol> = reqs
            .iter()
            .zip(&flips)
            .map(|(r, &binary)| {
                if binary {
                    encode_binary_frame(r, &mut frame);
                } else {
                    encode_json_frame(r, &mut frame).unwrap();
                }
                buf.extend_from_slice(&frame);
                if binary { WireProtocol::Binary } else { WireProtocol::Json }
            })
            .collect();
        let mut reader = std::io::BufReader::new(&buf[..]);
        let (mut payload, mut line) = (Vec::new(), String::new());
        for (want, want_proto) in reqs.iter().zip(&protos) {
            let (got, proto): (Request, _) =
                read_frame_any(&mut reader, &mut payload, &mut line)
                    .unwrap()
                    .expect("frame present");
            prop_assert_eq!(proto, *want_proto);
            prop_assert_eq!(&got, want);
        }
    }

    /// Truncating a binary frame anywhere strictly inside it yields the
    /// transport error (`UnexpectedEof`), never `InvalidData` — torn
    /// binary frames must stay retryable exactly like torn JSON lines.
    #[test]
    fn torn_binary_frames_are_transport_errors(
        resp in any_response(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        encode_binary_frame(&resp, &mut buf);
        let keep = 1 + cut.index(buf.len() - 1);
        let torn = &buf[..keep];
        let (mut payload, mut line) = (Vec::new(), String::new());
        let err = read_frame_any::<Response, _>(
            &mut std::io::BufReader::new(torn),
            &mut payload,
            &mut line,
        )
        .expect_err("a torn frame must not parse");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    /// Histogram merge is associative and commutative: however the
    /// server folds its per-shard histograms, every quantile, count,
    /// and max comes out identical.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in prop::collection::vec(1u64..2_000_000, 0..64),
        ys in prop::collection::vec(1u64..2_000_000, 0..64),
        zs in prop::collection::vec(1u64..2_000_000, 0..64),
    ) {
        let fill = |ns: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in ns {
                h.record(Duration::from_nanos(v));
            }
            h
        };
        let (a, b, c) = (fill(&xs), fill(&ys), fill(&zs));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // c ⊕ b ⊕ a: commutes too.
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        prop_assert_eq!(&left, &rev);

        // And the merged quantiles equal one histogram fed everything.
        let mut all = Vec::new();
        all.extend_from_slice(&xs);
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let whole = fill(&all);
        prop_assert_eq!(&left, &whole);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(left.quantile_ns(q), whole.quantile_ns(q));
        }
    }
}
