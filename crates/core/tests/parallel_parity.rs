//! Multi-core ≡ single-core parity on the real scheduling stack, at
//! every worker count. Three contracts, each pinned with exact `==`:
//!
//! 1. `collect_rollouts_par` assembles the *same bytes* as the
//!    sequential `collect_rollouts_vec` — partitioned seed schedules,
//!    per-worker `VecEnv`s and the seed-ordered arena merge are
//!    invisible in the batch.
//! 2. The sharded fused update is bit-identical at any worker count,
//!    and bit-identical to the monolithic fused update whenever the
//!    minibatch fits in one `SHARD_ROWS` chunk.
//! 3. `train()` with `n_threads >= 2` reproduces the same curve and
//!    checkpoint at every thread count (and, under single-chunk
//!    minibatches, the exact single-core curve).
//!
//! CI runs this suite on both kernel dispatch arms (default SIMD and
//! `RLSCHED_FORCE_SCALAR=1`) and under `RLSCHED_THREADS=4`.

use std::sync::Arc;

use rlsched_rl::{collect_rollouts_par, collect_rollouts_vec, Batch, PpoConfig, VecEnv};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::NamedWorkload;
use rlscheduler::{
    train, Agent, AgentConfig, FilterMode, ObsConfig, PolicyKind, SchedulingEnv, TrainConfig,
};

fn agent_of(kind: PolicyKind, ppo: PpoConfig) -> Agent {
    Agent::new(AgentConfig {
        policy: kind,
        obs: ObsConfig {
            max_obsv: 16,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo,
        seed: 9,
    })
}

fn env_for(agent: &Agent, seq_len: usize) -> SchedulingEnv {
    let trace = Arc::new(NamedWorkload::Lublin1.generate(400, 7));
    SchedulingEnv::new(
        trace,
        seq_len,
        SimConfig::default(),
        *agent.encoder(),
        agent.objective(),
    )
}

fn assert_batches_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.obs.data(), b.obs.data(), "{what}: observations");
    assert_eq!(a.masks.data(), b.masks.data(), "{what}: masks");
    assert_eq!(a.actions, b.actions, "{what}: actions");
    assert_eq!(a.advantages, b.advantages, "{what}: advantages");
    assert_eq!(a.returns, b.returns, "{what}: returns");
    assert_eq!(a.logp_old, b.logp_old, "{what}: sampled log-probs");
}

/// Parallel rollout over partitioned seed schedules vs the sequential
/// vectorized sampler, across worker counts and both fast-path policy
/// families.
#[test]
fn parallel_rollout_matches_sequential_on_scheduling_envs() {
    for kind in [PolicyKind::Kernel, PolicyKind::MlpV2] {
        let agent = agent_of(kind, PpoConfig::default());
        let seeds: Vec<u64> = (60..73).collect(); // 13 episodes: ragged split

        let mut venv = VecEnv::new((0..4).map(|_| env_for(&agent, 24)).collect::<Vec<_>>());
        let (base_batch, base_stats) = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);

        for threads in [1usize, 2, 3, 7] {
            let (batch, stats) = rayon::with_threads(threads, || {
                collect_rollouts_par(agent.ppo(), || env_for(&agent, 24), 3, &seeds)
            });
            let what = format!("{kind:?} at {threads} workers");
            assert_batches_identical(&batch, &base_batch, &what);
            assert_eq!(stats.steps, base_stats.steps, "{what}: step count");
            assert_eq!(stats.metrics, base_stats.metrics, "{what}: metrics");
            assert_eq!(
                stats.mean_return.to_bits(),
                base_stats.mean_return.to_bits(),
                "{what}: mean return"
            );
        }
    }
}

/// One collected batch for a given agent (contents only depend on the
/// policy weights and seeds, which are fixed).
fn batch_for(agent: &Agent, episodes: usize, seq_len: usize) -> Batch {
    let mut venv = VecEnv::new(
        (0..episodes)
            .map(|_| env_for(agent, seq_len))
            .collect::<Vec<_>>(),
    );
    let seeds: Vec<u64> = (0..episodes as u64).collect();
    let (batch, _stats) = collect_rollouts_vec(agent.ppo(), &mut venv, &seeds);
    batch
}

/// The sharded update must produce identical stats and checkpoints at
/// every worker count (multi-chunk minibatches: the sharded arm's own
/// deterministic trajectory).
#[test]
fn sharded_update_is_thread_count_invariant() {
    let ppo = PpoConfig {
        train_pi_iters: 4,
        train_v_iters: 4,
        minibatch: Some(150), // 3 chunks, last ragged
        ent_coef: 0.01,
        ..PpoConfig::default()
    };
    let proto = agent_of(PolicyKind::Kernel, ppo);
    let batch = batch_for(&proto, 5, 40);

    let run = |threads: usize| {
        let mut a = Agent::load_json(&proto.save_json()).expect("clone");
        let stats = rayon::with_threads(threads, || {
            (0..3)
                .map(|_| {
                    a.ppo_mut()
                        .update_fused_sharded(&batch)
                        .expect("kernel policy is fused-eligible")
                })
                .collect::<Vec<_>>()
        });
        (stats, a.save_json())
    };

    let (base_stats, base_ckpt) = run(1);
    for threads in [2usize, 3, 7] {
        let (stats, ckpt) = run(threads);
        assert_eq!(stats, base_stats, "stats diverged at {threads} workers");
        assert_eq!(ckpt, base_ckpt, "checkpoint diverged at {threads} workers");
    }
}

/// Minibatches of at most `SHARD_ROWS` rows are one chunk: the sharded
/// arm must reproduce the monolithic fused update bit for bit — stats,
/// gradients, Adam state, weights (pinned through the checkpoint).
#[test]
fn single_chunk_sharded_update_matches_monolithic_exactly() {
    let ppo = PpoConfig {
        train_pi_iters: 4,
        train_v_iters: 4,
        minibatch: Some(37), // < SHARD_ROWS: one (ragged) chunk
        ent_coef: 0.01,
        ..PpoConfig::default()
    };
    let proto = agent_of(PolicyKind::Kernel, ppo);
    let batch = batch_for(&proto, 4, 40);
    let mut mono = Agent::load_json(&proto.save_json()).expect("clone");
    let mut shard = Agent::load_json(&proto.save_json()).expect("clone");
    for step in 0..3 {
        let sm = mono.ppo_mut().update_fused(&batch).expect("fused");
        let ss = rayon::with_threads(3, || {
            shard.ppo_mut().update_fused_sharded(&batch).expect("fused")
        });
        assert_eq!(sm, ss, "stats diverged at update {step}");
    }
    assert_eq!(
        mono.save_json(),
        shard.save_json(),
        "single-chunk sharded updates must walk the monolithic trajectory"
    );
}

fn tiny_cfg(minibatch_rows: usize, n_threads: usize) -> (AgentConfig, TrainConfig) {
    let agent_cfg = AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 8,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: PpoConfig {
            train_pi_iters: 4,
            train_v_iters: 4,
            minibatch: Some(minibatch_rows),
            ..PpoConfig::default()
        },
        seed: 5,
    };
    let train_cfg = TrainConfig {
        epochs: 2,
        trajectories_per_epoch: 6,
        seq_len: 20,
        sim: SimConfig::default(),
        filter: FilterMode::Off,
        seed: 11,
        n_envs: 4,
        n_threads,
    };
    (agent_cfg, train_cfg)
}

/// End-to-end: the multi-core `train()` walks the same curve and lands
/// on the same checkpoint at every `n_threads >= 2`; with single-chunk
/// minibatches it reproduces the exact single-core run too.
#[test]
fn training_curve_is_invariant_across_thread_counts() {
    let trace = NamedWorkload::Lublin1.generate(300, 13);

    // Single-chunk minibatches: n_threads=1 and every n_threads>=2 must
    // agree bit for bit.
    let mut curves = Vec::new();
    for threads in [1usize, 2, 3] {
        let (acfg, tcfg) = tiny_cfg(48, threads);
        let mut agent = Agent::new(acfg);
        let curve = train(&mut agent, &trace, &tcfg);
        curves.push((threads, curve, agent.save_json()));
    }
    let (_, base_curve, base_ckpt) = &curves[0];
    for (threads, curve, ckpt) in &curves[1..] {
        for (a, b) in curve.iter().zip(base_curve) {
            assert_eq!(
                a.mean_metric.to_bits(),
                b.mean_metric.to_bits(),
                "mean metric at {threads} threads, epoch {}",
                a.epoch
            );
            assert_eq!(
                a.mean_return.to_bits(),
                b.mean_return.to_bits(),
                "mean return at {threads} threads, epoch {}",
                a.epoch
            );
            assert_eq!(a.update, b.update, "update stats at {threads} threads");
        }
        assert_eq!(ckpt, base_ckpt, "checkpoint at {threads} threads");
    }

    // Multi-chunk minibatches: the parallel runs still agree with each
    // other (the sharded arm's own deterministic trajectory).
    let run = |threads: usize| {
        let (acfg, tcfg) = tiny_cfg(150, threads);
        let mut agent = Agent::new(acfg);
        let curve = train(&mut agent, &trace, &tcfg);
        (curve, agent.save_json())
    };
    let (c2, k2) = run(2);
    let (c7, k7) = run(7);
    for (a, b) in c2.iter().zip(&c7) {
        assert_eq!(a.update, b.update, "multi-chunk update stats");
        assert_eq!(a.mean_metric.to_bits(), b.mean_metric.to_bits());
    }
    assert_eq!(k2, k7, "multi-chunk checkpoints across thread counts");
}
