//! Error type for the simulator.

use std::fmt;

/// Errors raised by [`crate::SchedSession`] and the episode driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// `step` was called with no job waiting.
    EmptyQueue,
    /// `step` was called with a queue position past the end of the queue.
    BadQueuePosition {
        /// The offending position.
        pos: usize,
        /// Current queue length.
        queue_len: usize,
    },
    /// A job requests more processors than the whole cluster owns, so it can
    /// never be scheduled. Clamp the trace first (`JobTrace::clamp_to_cluster`).
    JobTooLarge {
        /// Trace-order index of the job.
        job_index: usize,
        /// Processors requested.
        procs: u32,
        /// Cluster size.
        cluster: u32,
    },
    /// Metrics were requested before every job was scheduled.
    NotDone {
        /// Jobs scheduled so far.
        scheduled: usize,
        /// Total jobs in the episode.
        total: usize,
    },
    /// The episode trace has no jobs.
    EmptyTrace,
    /// A streaming trace yielded a job whose submit time precedes its
    /// predecessor's. One-pass replay relies on arrival order; sort the
    /// trace (SWF archives are sorted) or materialize it first.
    NonMonotoneArrival {
        /// Admission-order index (0-based) of the offending job.
        seq: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyQueue => write!(f, "step called with an empty wait queue"),
            SimError::BadQueuePosition { pos, queue_len } => {
                write!(
                    f,
                    "queue position {pos} out of range (queue has {queue_len} jobs)"
                )
            }
            SimError::JobTooLarge {
                job_index,
                procs,
                cluster,
            } => write!(
                f,
                "job #{job_index} requests {procs} processors but the cluster has only {cluster}"
            ),
            SimError::NotDone { scheduled, total } => write!(
                f,
                "episode not finished: {scheduled}/{total} jobs scheduled"
            ),
            SimError::EmptyTrace => write!(f, "cannot simulate an empty trace"),
            SimError::NonMonotoneArrival { seq } => write!(
                f,
                "streaming job #{seq} submitted before its predecessor; one-pass replay needs submit-sorted traces"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_numbers() {
        let e = SimError::BadQueuePosition {
            pos: 9,
            queue_len: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = SimError::JobTooLarge {
            job_index: 1,
            procs: 100,
            cluster: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));
        let e = SimError::NotDone {
            scheduled: 2,
            total: 5,
        };
        assert!(e.to_string().contains("2/5"));
    }
}
