//! Trace characteristics: the Table II columns of the paper plus the
//! per-user counts behind the fairness discussion (§V-F).

use std::collections::HashMap;

use crate::trace::JobTrace;

/// Summary statistics of a job trace, matching Table II of the paper:
/// cluster size, mean interarrival time `it`, mean requested runtime `rt`,
/// and mean requested processors `nt`, plus extra moments used by the
/// workload calibration tests.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs summarized.
    pub jobs: usize,
    /// Cluster size (`size` column of Table II).
    pub max_procs: u32,
    /// Mean interarrival time in seconds (`it`).
    pub mean_interarrival: f64,
    /// Mean requested runtime in seconds (`rt`).
    pub mean_requested_time: f64,
    /// Mean requested processors (`nt`).
    pub mean_requested_procs: f64,
    /// Mean actual runtime in seconds.
    pub mean_run_time: f64,
    /// Coefficient of variation of interarrival times (burstiness signal —
    /// the PIK trace's defining property in §III-2).
    pub cv_interarrival: f64,
    /// Coefficient of variation of actual runtimes.
    pub cv_run_time: f64,
    /// Fraction of jobs whose processor request is a power of two.
    pub pow2_fraction: f64,
    /// Number of distinct users.
    pub users: usize,
    /// Jobs submitted by the most active user.
    pub max_user_jobs: usize,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn cv(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if xs.len() < 2 || m == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt() / m
}

impl TraceStats {
    /// Compute statistics over an entire trace.
    pub fn from_trace(trace: &JobTrace) -> TraceStats {
        let jobs = trace.jobs();
        let inter: Vec<f64> = jobs
            .windows(2)
            .map(|w| w[1].submit_time - w[0].submit_time)
            .collect();
        let req_time: Vec<f64> = jobs.iter().map(|j| j.time_bound()).collect();
        let run_time: Vec<f64> = jobs.iter().map(|j| j.actual_runtime()).collect();
        let req_procs: Vec<f64> = jobs.iter().map(|j| j.procs() as f64).collect();
        let pow2 = jobs.iter().filter(|j| j.procs().is_power_of_two()).count();

        let mut per_user: HashMap<i64, usize> = HashMap::new();
        for j in jobs {
            *per_user.entry(j.user_id).or_insert(0) += 1;
        }

        TraceStats {
            jobs: jobs.len(),
            max_procs: trace.max_procs(),
            mean_interarrival: mean(&inter),
            mean_requested_time: mean(&req_time),
            mean_requested_procs: mean(&req_procs),
            mean_run_time: mean(&run_time),
            cv_interarrival: cv(&inter),
            cv_run_time: cv(&run_time),
            pow2_fraction: if jobs.is_empty() {
                0.0
            } else {
                pow2 as f64 / jobs.len() as f64
            },
            users: per_user.len(),
            max_user_jobs: per_user.values().copied().max().unwrap_or(0),
        }
    }

    /// Render one row in the format of Table II of the paper.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{:<14} {:>8} {:>9.0} {:>9.0} {:>7.0}",
            name,
            self.max_procs,
            self.mean_interarrival,
            self.mean_requested_time,
            self.mean_requested_procs
        )
    }
}

/// Per-user job counts, used by the fairness analysis (§V-F notes HPC2N's
/// dominant user).
pub fn jobs_per_user(trace: &JobTrace) -> HashMap<i64, usize> {
    let mut per_user = HashMap::new();
    for j in trace.jobs() {
        *per_user.entry(j.user_id).or_insert(0) += 1;
    }
    per_user
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn mk_trace() -> JobTrace {
        let jobs = vec![
            Job::new(1, 0.0, 100.0, 4, 200.0).with_user(1),
            Job::new(2, 10.0, 300.0, 8, 400.0).with_user(1),
            Job::new(3, 30.0, 200.0, 3, 300.0).with_user(2),
        ];
        JobTrace::new(jobs, 128)
    }

    #[test]
    fn basic_moments() {
        let s = TraceStats::from_trace(&mk_trace());
        assert_eq!(s.jobs, 3);
        assert_eq!(s.max_procs, 128);
        assert!((s.mean_interarrival - 15.0).abs() < 1e-9);
        assert!((s.mean_requested_time - 300.0).abs() < 1e-9);
        assert!((s.mean_requested_procs - 5.0).abs() < 1e-9);
        assert!((s.mean_run_time - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pow2_fraction_counts_4_and_8() {
        let s = TraceStats::from_trace(&mk_trace());
        assert!((s.pow2_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn user_counts() {
        let s = TraceStats::from_trace(&mk_trace());
        assert_eq!(s.users, 2);
        assert_eq!(s.max_user_jobs, 2);
        let m = jobs_per_user(&mk_trace());
        assert_eq!(m[&1], 2);
        assert_eq!(m[&2], 1);
    }

    #[test]
    fn cv_zero_for_constant_series() {
        let jobs = (0..5)
            .map(|i| Job::new(i + 1, i as f64 * 10.0, 7.0, 2, 7.0))
            .collect();
        let s = TraceStats::from_trace(&JobTrace::new(jobs, 16));
        assert!(s.cv_interarrival.abs() < 1e-12);
        assert!(s.cv_run_time.abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let s = TraceStats::from_trace(&JobTrace::new(vec![], 16));
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_interarrival, 0.0);
        assert_eq!(s.pow2_fraction, 0.0);
    }

    #[test]
    fn table_row_contains_name_and_size() {
        let row = TraceStats::from_trace(&mk_trace()).table_row("Test");
        assert!(row.contains("Test"));
        assert!(row.contains("128"));
    }
}
