//! Workspace umbrella crate.
//!
//! Re-exports every crate of the RLScheduler reproduction so the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` can reach the whole system through one dependency.

pub use rlsched_nn as nn;
pub use rlsched_obs as obs;
pub use rlsched_replay as replay;
pub use rlsched_rl as rl;
pub use rlsched_sched as sched;
pub use rlsched_serve as serve;
pub use rlsched_sim as sim;
pub use rlsched_swf as swf;
pub use rlsched_workload as workload;
pub use rlscheduler as core;
