//! Console tables and JSON result files.

use std::fs;
use std::path::PathBuf;

use serde_json::Value;

/// Collects one experiment's output: a human-readable table on stdout and
/// a machine-readable JSON file under `results/`.
pub struct Report {
    experiment: String,
    json: serde_json::Map<String, Value>,
    out_dir: PathBuf,
}

impl Report {
    /// Start a report for an experiment id (e.g. `"table5"`).
    pub fn new(experiment: &str, out_dir: &str) -> Self {
        Report {
            experiment: experiment.to_string(),
            json: serde_json::Map::new(),
            out_dir: PathBuf::from(out_dir),
        }
    }

    /// Print a section heading.
    pub fn section(&self, title: &str) {
        println!("\n=== {title} ===");
    }

    /// Print one fixed-width table.
    pub fn table(&self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i.min(widths.len() - 1)]));
            }
            println!("{}", s.trim_end());
        };
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in rows {
            line(row);
        }
    }

    /// Attach a JSON value to the result file.
    pub fn record(&mut self, key: &str, value: Value) {
        self.json.insert(key.to_string(), value);
    }

    /// Write `results/<experiment>.json`. Returns the path.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("{}.json", self.experiment));
        fs::write(&path, serde_json::to_string_pretty(&Value::Object(self.json.clone()))?)?;
        println!("\n[saved {}]", path.display());
        Ok(path)
    }
}

/// Format a metric value the way the paper's tables do (4-5 significant
/// figures, no scientific notation for the typical ranges).
pub fn fmt_metric(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_metric_ranges() {
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(0.657), "0.657");
        assert_eq!(fmt_metric(58.64), "58.64");
        assert_eq!(fmt_metric(7273.8), "7274");
    }

    #[test]
    fn report_saves_json() {
        let dir = std::env::temp_dir().join("rlsched-report-test");
        let mut r = Report::new("unit", dir.to_str().unwrap());
        r.record("answer", serde_json::json!(42));
        let path = r.save().unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("42"));
    }

    #[test]
    fn table_prints_without_panic() {
        let r = Report::new("t", "/tmp");
        r.table(
            &["a", "metric"],
            &[vec!["x".into(), "1.0".into()], vec!["yyyy".into(), "2.5".into()]],
        );
    }
}
