//! Owned job traces: slicing, windowing and sequence sampling.
//!
//! The paper trains on random *sequences* of 256 consecutive jobs and
//! evaluates on sequences of 1024 consecutive jobs sampled from the first
//! 10K jobs of each trace (§V-A, §V-C2). [`SequenceSampler`] implements that
//! protocol; the same sampled offsets are reused across schedulers so that
//! comparisons are paired, exactly as the paper does ("across different
//! scheduling algorithms, we used the same 10 random job sequences").

use crate::job::Job;
use crate::parse::SwfHeader;
use crate::SwfError;

/// An owned trace: a list of jobs (sorted by submit time) plus the cluster
/// size it was recorded on.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    jobs: Vec<Job>,
    max_procs: u32,
    header: SwfHeader,
}

impl JobTrace {
    /// Build a trace from jobs and a cluster size. Jobs are sorted by submit
    /// time (stable, so equal-time jobs keep trace order). Records are kept
    /// verbatim — including `-1` unknown markers — so that parse/write round
    /// trips are lossless; call [`JobTrace::sanitized`] before simulating.
    pub fn new(jobs: Vec<Job>, max_procs: u32) -> Self {
        Self::with_header(jobs, max_procs, SwfHeader::default())
    }

    /// Like [`JobTrace::new`] but keeps parsed header metadata.
    pub fn with_header(mut jobs: Vec<Job>, max_procs: u32, header: SwfHeader) -> Self {
        jobs.sort_by(|a, b| {
            a.submit_time
                .partial_cmp(&b.submit_time)
                .expect("submit times must be finite")
        });
        JobTrace {
            jobs,
            max_procs: max_procs.max(1),
            header,
        }
    }

    /// Drop unschedulable records and normalize unknown markers, producing a
    /// trace safe for simulation (see [`Job::sanitized`]).
    pub fn sanitized(&self) -> JobTrace {
        JobTrace {
            jobs: self
                .jobs
                .iter()
                .filter(|j| j.is_schedulable())
                .map(|j| j.sanitized())
                .collect(),
            max_procs: self.max_procs,
            header: self.header.clone(),
        }
    }

    /// The jobs, ordered by submit time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total processors of the cluster this trace targets.
    pub fn max_procs(&self) -> u32 {
        self.max_procs
    }

    /// Parsed SWF header metadata.
    pub fn header(&self) -> &SwfHeader {
        &self.header
    }

    /// Keep only the first `n` jobs (the paper uses the first 10K jobs of
    /// every trace, §V-A).
    pub fn truncated(&self, n: usize) -> JobTrace {
        JobTrace {
            jobs: self.jobs.iter().take(n).cloned().collect(),
            max_procs: self.max_procs,
            header: self.header.clone(),
        }
    }

    /// A window of `len` consecutive jobs starting at job index `start`,
    /// with submit times shifted so the first job arrives at t=0.
    ///
    /// Shifting makes every sampled sequence start from an idle cluster at
    /// time zero, which is how SchedGym replays sequences ("starting from an
    /// idle cluster, it loads jobs from job trace one by one", §IV-D).
    pub fn window(&self, start: usize, len: usize) -> Result<JobTrace, SwfError> {
        if start >= self.jobs.len() || start + len > self.jobs.len() {
            return Err(SwfError::Invalid {
                job: None,
                reason: format!(
                    "window [{start}, {}) out of range for trace of {} jobs",
                    start + len,
                    self.jobs.len()
                ),
            });
        }
        let t0 = self.jobs[start].submit_time;
        let jobs = self.jobs[start..start + len]
            .iter()
            .map(|j| {
                let mut j = j.clone();
                j.submit_time -= t0;
                j
            })
            .collect();
        Ok(JobTrace {
            jobs,
            max_procs: self.max_procs,
            header: self.header.clone(),
        })
    }

    /// Jobs that request more processors than the cluster has cannot ever be
    /// scheduled; clamp them to the cluster size (archives contain a handful
    /// of such records; the reference simulator does the same).
    pub fn clamp_to_cluster(&self) -> JobTrace {
        let mut t = self.clone();
        for j in &mut t.jobs {
            if j.procs() > t.max_procs {
                j.requested_procs = t.max_procs as i64;
            }
        }
        t
    }

    /// Distinct user ids appearing in the trace (for fairness experiments).
    pub fn users(&self) -> Vec<i64> {
        let mut users: Vec<i64> = self.jobs.iter().map(|j| j.user_id).collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

/// Samples fixed-length windows of consecutive jobs at random offsets,
/// reproducibly from a caller-provided RNG-like seed sequence.
///
/// Randomness is injected as raw `u64` draws so this crate stays free of a
/// rand dependency; callers pass a closure (see `sample_offsets_with`).
#[derive(Debug, Clone)]
pub struct SequenceSampler {
    trace_len: usize,
    seq_len: usize,
}

impl SequenceSampler {
    /// A sampler for sequences of `seq_len` jobs out of a trace of
    /// `trace_len` jobs.
    pub fn new(trace_len: usize, seq_len: usize) -> Result<Self, SwfError> {
        if seq_len == 0 || seq_len > trace_len {
            return Err(SwfError::Invalid {
                job: None,
                reason: format!(
                    "cannot sample sequences of {seq_len} jobs from a trace of {trace_len}"
                ),
            });
        }
        Ok(SequenceSampler { trace_len, seq_len })
    }

    /// Number of valid starting offsets.
    pub fn offset_count(&self) -> usize {
        self.trace_len - self.seq_len + 1
    }

    /// Map a raw random draw onto a valid starting offset.
    pub fn offset_from_draw(&self, draw: u64) -> usize {
        (draw % self.offset_count() as u64) as usize
    }

    /// Draw `n` offsets using the provided source of raw randomness.
    pub fn sample_offsets_with<F: FnMut() -> u64>(&self, n: usize, mut draw: F) -> Vec<usize> {
        (0..n).map(|_| self.offset_from_draw(draw())).collect()
    }

    /// The configured sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_trace(n: usize) -> JobTrace {
        let jobs = (0..n)
            .map(|i| Job::new(i as u32 + 1, i as f64 * 10.0, 5.0, 2, 8.0))
            .collect();
        JobTrace::new(jobs, 64)
    }

    #[test]
    fn new_sorts_by_submit_time() {
        let jobs = vec![
            Job::new(2, 50.0, 1.0, 1, 1.0),
            Job::new(1, 10.0, 1.0, 1, 1.0),
        ];
        let t = JobTrace::new(jobs, 4);
        assert_eq!(t.jobs()[0].id, 1);
        assert_eq!(t.jobs()[1].id, 2);
    }

    #[test]
    fn window_shifts_to_zero() {
        let t = mk_trace(10);
        let w = t.window(3, 4).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w.jobs()[0].submit_time, 0.0);
        assert_eq!(w.jobs()[1].submit_time, 10.0);
        assert_eq!(w.jobs()[0].id, 4);
    }

    #[test]
    fn window_out_of_range_errors() {
        let t = mk_trace(10);
        assert!(t.window(8, 4).is_err());
        assert!(t.window(10, 1).is_err());
        assert!(t.window(0, 11).is_err());
    }

    #[test]
    fn window_at_exact_end_is_ok() {
        let t = mk_trace(10);
        let w = t.window(6, 4).unwrap();
        assert_eq!(w.jobs().last().unwrap().id, 10);
    }

    #[test]
    fn truncated_takes_prefix() {
        let t = mk_trace(10).truncated(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.jobs()[2].id, 3);
    }

    #[test]
    fn clamp_to_cluster_caps_oversized_requests() {
        let jobs = vec![Job::new(1, 0.0, 1.0, 1000, 1.0)];
        let t = JobTrace::new(jobs, 64).clamp_to_cluster();
        assert_eq!(t.jobs()[0].procs(), 64);
    }

    #[test]
    fn users_are_deduped_sorted() {
        let jobs = vec![
            Job::new(1, 0.0, 1.0, 1, 1.0).with_user(5),
            Job::new(2, 1.0, 1.0, 1, 1.0).with_user(3),
            Job::new(3, 2.0, 1.0, 1, 1.0).with_user(5),
        ];
        let t = JobTrace::new(jobs, 4);
        assert_eq!(t.users(), vec![3, 5]);
    }

    #[test]
    fn sampler_rejects_bad_lengths() {
        assert!(SequenceSampler::new(10, 0).is_err());
        assert!(SequenceSampler::new(10, 11).is_err());
        assert!(SequenceSampler::new(10, 10).is_ok());
    }

    #[test]
    fn sampler_offsets_in_range() {
        let s = SequenceSampler::new(100, 30).unwrap();
        assert_eq!(s.offset_count(), 71);
        let mut x = 0u64;
        let offs = s.sample_offsets_with(50, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(offs.iter().all(|&o| o + 30 <= 100));
    }

    #[test]
    fn sanitized_drops_unschedulable_jobs() {
        let mut bad = Job::new(1, 0.0, -1.0, 1, 1.0);
        bad.run_time = -1.0;
        bad.requested_procs = -1;
        bad.used_procs = -1;
        let ok = Job::new(2, 0.0, 5.0, 1, 5.0);
        let t = JobTrace::new(vec![bad, ok], 4);
        assert_eq!(t.len(), 2, "construction is lossless");
        let s = t.sanitized();
        assert_eq!(s.len(), 1);
        assert_eq!(s.jobs()[0].id, 2);
    }

    #[test]
    fn sanitized_normalizes_markers() {
        let mut j = Job::new(1, 0.0, 0.0, 2, -1.0);
        j.used_procs = -1;
        let s = JobTrace::new(vec![j], 4).sanitized();
        assert_eq!(s.jobs()[0].run_time, 1.0);
        assert_eq!(s.jobs()[0].requested_time, 1.0);
        assert_eq!(s.jobs()[0].used_procs, 2);
    }
}
