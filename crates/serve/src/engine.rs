//! The shard's scoring engine: coalesce encoded request rows into one
//! stacked `[n, obs_dim]` matrix, score it through a single
//! [`BatchPolicy`] forward, and hand back one clamped action per row.
//!
//! This is the allocation-free core the network layer wraps: all
//! buffers (the stacked observations/masks, the network scratch, the
//! action row) live in the engine and only ever grow to their
//! high-water mark, so a steady-state `push_*` + `flush` cycle touches
//! the heap zero times — the same discipline as `nn::infer` and
//! `nn::fused` (pinned by the alloc-regression suite).
//!
//! # Decision parity
//!
//! The engine scores through a [`ScorerSnapshot`], whose representation
//! matches `Agent::as_policy` per architecture, and the forward kernels
//! are row-count invariant — so row `i` of a coalesced batch computes
//! exactly the bits the in-process policy adapter would for the same
//! decision point, regardless of what else landed in the batch, which
//! shard scored it, or how the coalescing window happened to cut. The
//! serve parity suite pins this for every `PolicyKind` on both dispatch
//! arms.
//!
//! # Hot swap
//!
//! An engine watches a [`ScorerSlot`]: a mutex-guarded current snapshot
//! plus a generation counter. [`ScorerSlot::swap`] installs new weights
//! atomically; each engine notices the generation bump at its next
//! flush and re-clones the `Arc` (pointer-cheap, no weight copy). A
//! batch is always scored by exactly one snapshot — requests are never
//! dropped or split across generations mid-batch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rlsched_obs::{Counter, Gauge, Histogram};
use rlsched_rl::{greedy_batch, ActorScratch};
use rlscheduler::{ObsEncoder, QueueSnapshot, ScorerSnapshot};

/// The swappable weight slot shared by every shard of a server.
///
/// Besides the current snapshot the slot remembers the one it replaced,
/// so a checkpoint that passes validation but regresses the live eval
/// metric can be rolled back ([`ScorerSlot::rollback`]) without the
/// trainer re-sending the old weights.
#[derive(Debug)]
pub struct ScorerSlot {
    current: Mutex<SlotState>,
    generation: AtomicU64,
}

#[derive(Debug)]
struct SlotState {
    current: ScorerSnapshot,
    previous: Option<ScorerSnapshot>,
}

impl ScorerSlot {
    /// A slot serving `snapshot` at generation 0.
    pub fn new(snapshot: ScorerSnapshot) -> Arc<Self> {
        Arc::new(ScorerSlot {
            current: Mutex::new(SlotState {
                current: snapshot,
                previous: None,
            }),
            generation: AtomicU64::new(0),
        })
    }

    /// Install new weights. In-flight batches finish on the snapshot
    /// they started with; every later batch scores through the new one.
    /// The swap is pointer-sized work under the lock — weight matrices
    /// are shared via `Arc`, never copied. The displaced snapshot is
    /// retained for [`ScorerSlot::rollback`].
    pub fn swap(&self, snapshot: ScorerSnapshot) {
        let mut state = self.current.lock().expect("scorer slot poisoned");
        state.previous = Some(std::mem::replace(&mut state.current, snapshot));
        // The bump publishes while the lock is still held, so an engine
        // that sees the new generation always reads the new snapshot.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Restore the snapshot the last [`ScorerSlot::swap`] displaced and
    /// bump the generation (engines must re-read — their current clone
    /// is the bad one). Returns `false` (and changes nothing) when no
    /// previous generation is retained; the retained snapshot is
    /// consumed, so a second rollback without an intervening swap is a
    /// no-op rather than a ping-pong.
    pub fn rollback(&self) -> bool {
        let mut state = self.current.lock().expect("scorer slot poisoned");
        let Some(prev) = state.previous.take() else {
            return false;
        };
        state.current = prev;
        self.generation.fetch_add(1, Ordering::Release);
        true
    }

    /// Current swap generation (0 until the first swap or rollback).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clone the current snapshot (an `Arc` bump, not a weight copy).
    pub fn snapshot(&self) -> ScorerSnapshot {
        self.current
            .lock()
            .expect("scorer slot poisoned")
            .current
            .clone()
    }
}

/// One pending row's clamp bound, kept alongside the stacked matrices.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    queue_len: usize,
}

/// Registry handles an instrumented engine records into at every
/// non-empty flush. All handles are `rlsched-obs` atomics: recording is
/// a few relaxed RMWs, zero allocations (pinned in `alloc_regression`),
/// and the `obs_overhead` bench bounds the whole-cycle cost within 2%
/// of an uninstrumented engine.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Rows scored (each becomes one `served_by: Model` reply).
    pub rows: Counter,
    /// Batched forwards dispatched.
    pub batches: Counter,
    /// Coalesced batch size distribution.
    pub batch_rows: Histogram,
    /// Largest batch so far.
    pub batch_max: Gauge,
}

/// A shard's coalescing batch scorer. See the module docs.
pub struct ShardEngine {
    slot: Arc<ScorerSlot>,
    scorer: ScorerSnapshot,
    seen_generation: u64,
    batch_cap: usize,
    obs: Vec<f32>,
    masks: Vec<f32>,
    rows: Vec<RowMeta>,
    scratch: ActorScratch,
    actions: Vec<usize>,
    metrics: Option<EngineMetrics>,
}

impl ShardEngine {
    /// An engine scoring through `slot`, flushing at `batch_cap` rows.
    pub fn new(slot: Arc<ScorerSlot>, batch_cap: usize) -> Self {
        assert!(batch_cap > 0, "batch cap must be at least one request");
        let scorer = slot.snapshot();
        let seen_generation = slot.generation();
        ShardEngine {
            slot,
            scorer,
            seen_generation,
            batch_cap,
            obs: Vec::new(),
            masks: Vec::new(),
            rows: Vec::new(),
            scratch: ActorScratch::new(),
            actions: Vec::new(),
            metrics: None,
        }
    }

    /// Attach registry handles; every later non-empty flush records
    /// batch count, row count, and the batch-size distribution. The
    /// handles share storage with their registry, so a respawned
    /// shard's fresh engine keeps the counters monotone.
    pub fn instrument(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// Flattened observation width a request row must have.
    pub fn obs_dim(&self) -> usize {
        self.scorer.obs_dim()
    }

    /// Mask width a request row must have.
    pub fn n_actions(&self) -> usize {
        self.scorer.n_actions()
    }

    /// Rows waiting in the current batch.
    pub fn pending(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch reached its cap and must flush before the
    /// next push.
    pub fn is_full(&self) -> bool {
        self.rows.len() >= self.batch_cap
    }

    /// Append one pre-encoded request row. `queue_len` is the waiting
    /// queue's full length (the action-clamp bound, exactly as
    /// `Agent::as_policy` applies it). Panics when the row widths
    /// mismatch the scorer or the batch is already full — the server
    /// validates requests before they reach the engine.
    pub fn push_row(&mut self, obs: &[f32], mask: &[f32], queue_len: usize) {
        assert!(!self.is_full(), "push into a full batch (flush first)");
        assert_eq!(obs.len(), self.scorer.obs_dim(), "obs row width");
        assert_eq!(mask.len(), self.scorer.n_actions(), "mask row width");
        self.obs.extend_from_slice(obs);
        self.masks.extend_from_slice(mask);
        self.rows.push(RowMeta { queue_len });
    }

    /// Encode a [`QueueSnapshot`] straight into the stacked matrices
    /// (no intermediate row buffer) and append it.
    pub fn push_snapshot(&mut self, snap: &QueueSnapshot, encoder: &ObsEncoder) {
        assert!(!self.is_full(), "push into a full batch (flush first)");
        assert_eq!(
            encoder.obs_dim(),
            self.scorer.obs_dim(),
            "encoder window must match the scorer"
        );
        encoder.encode_snapshot_extend(snap, &mut self.obs, &mut self.masks);
        self.rows.push(RowMeta {
            queue_len: snap.queue_len(),
        });
    }

    /// Score every pending row through one batched forward and return
    /// the clamped actions in push order. Empties the batch. Returns an
    /// empty slice when nothing is pending.
    ///
    /// Picks up a hot-swapped snapshot first, so a batch is scored
    /// entirely by one weight generation.
    pub fn flush(&mut self) -> &[usize] {
        if self.slot.generation() != self.seen_generation {
            // Record the generation *before* taking the snapshot: a swap
            // racing this window can only make the recorded generation
            // stale, which costs one redundant re-clone at the next
            // flush — never a missed swap.
            self.seen_generation = self.slot.generation();
            self.scorer = self.slot.snapshot();
        }
        let rows = self.rows.len();
        if rows == 0 {
            self.actions.clear();
            return &self.actions;
        }
        if let Some(m) = &self.metrics {
            m.batches.inc();
            m.rows.add(rows as u64);
            m.batch_rows.record_value(rows as u64);
            m.batch_max.set_max(rows as f64);
        }
        greedy_batch(
            &self.scorer,
            &self.obs,
            &self.masks,
            rows,
            &mut self.scratch,
            &mut self.actions,
        );
        for (a, meta) in self.actions.iter_mut().zip(&self.rows) {
            // Same defensive clamp as Agent::as_policy: the mask already
            // confines argmax to valid slots, but never exceed the queue.
            *a = (*a).min(meta.queue_len.saturating_sub(1));
        }
        self.obs.clear();
        self.masks.clear();
        self.rows.clear();
        &self.actions
    }
}

impl std::fmt::Debug for ShardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEngine")
            .field("pending", &self.rows.len())
            .field("batch_cap", &self.batch_cap)
            .field("generation", &self.seen_generation)
            .finish()
    }
}
