//! A seeded random policy: the "no knowledge" floor used in tests and as a
//! sanity baseline for RL training (a trained agent must beat it).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlsched_sim::{Policy, QueueView};

/// Picks a uniformly random waiting job; reproducible from its seed.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Build from a seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn select(&mut self, view: &QueueView<'_>) -> usize {
        self.rng.gen_range(0..view.waiting.len())
    }

    fn name(&self) -> &str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlsched_sim::{run_episode, SimConfig};
    use rlsched_swf::{Job, JobTrace};

    fn mk_trace() -> JobTrace {
        let jobs = (0..30)
            .map(|i| {
                Job::new(
                    i + 1,
                    i as f64 * 5.0,
                    20.0 + (i % 5) as f64 * 30.0,
                    1 + (i % 3),
                    50.0,
                )
            })
            .collect();
        JobTrace::new(jobs, 4)
    }

    #[test]
    fn same_seed_same_schedule() {
        let t = mk_trace();
        let a = run_episode(&t, SimConfig::default(), &mut RandomPolicy::new(5)).unwrap();
        let b = run_episode(&t, SimConfig::default(), &mut RandomPolicy::new(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let t = mk_trace();
        let a = run_episode(&t, SimConfig::default(), &mut RandomPolicy::new(1)).unwrap();
        let b = run_episode(&t, SimConfig::default(), &mut RandomPolicy::new(2)).unwrap();
        // Not guaranteed in principle, but with 30 jobs the probability of
        // identical schedules under different seeds is negligible.
        assert_ne!(a, b);
    }

    #[test]
    fn selections_are_in_range() {
        let t = mk_trace();
        let m = run_episode(&t, SimConfig::with_backfill(), &mut RandomPolicy::new(42)).unwrap();
        assert_eq!(m.outcomes().len(), 30);
    }
}
