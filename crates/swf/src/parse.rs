//! SWF v2.2 parser.
//!
//! An SWF file is line-oriented: header comment lines start with `;` and
//! carry `Key: Value` metadata (`MaxProcs`, `MaxNodes`, `UnixStartTime`, …);
//! every other non-empty line is one job record with 18 whitespace-separated
//! numeric fields. Unknown values are `-1`.

use std::collections::BTreeMap;
use std::io::BufRead;

use crate::error::SwfError;
use crate::job::{Job, JobStatus};
use crate::trace::JobTrace;

/// Parsed header comments of an SWF file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwfHeader {
    /// `Key: Value` pairs from `;` comment lines, in insertion order of keys.
    pub fields: BTreeMap<String, String>,
    /// Comment lines that did not look like `Key: Value`.
    pub comments: Vec<String>,
}

impl SwfHeader {
    /// Look up a numeric header field such as `MaxProcs`.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.fields.get(key).and_then(|v| v.trim().parse().ok())
    }

    /// The cluster size: `MaxProcs`, falling back to `MaxNodes`.
    pub fn max_procs(&self) -> Option<u32> {
        self.get_i64("MaxProcs")
            .or_else(|| self.get_i64("MaxNodes"))
            .filter(|&v| v > 0)
            .map(|v| v as u32)
    }
}

fn parse_field_f64(tok: &str, line: usize, field: usize) -> Result<f64, SwfError> {
    tok.parse::<f64>().map_err(|_| SwfError::BadField {
        line,
        field,
        token: tok.to_string(),
    })
}

fn parse_field_i64(tok: &str, line: usize, field: usize) -> Result<i64, SwfError> {
    // Some archive traces store integral fields with a decimal point.
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(v);
    }
    tok.parse::<f64>()
        .map(|v| v as i64)
        .map_err(|_| SwfError::BadField {
            line,
            field,
            token: tok.to_string(),
        })
}

/// Parse one SWF data line (18 fields) into a [`Job`]. Allocation-free on
/// the success path (tokens land in a fixed array), so a streaming reader
/// can parse millions of lines without touching the heap.
pub fn parse_line(line: &str, lineno: usize) -> Result<Job, SwfError> {
    let mut toks = [""; 18];
    let mut found = 0usize;
    for tok in line.split_whitespace() {
        if found < 18 {
            toks[found] = tok;
        }
        found += 1;
    }
    if found != 18 {
        return Err(SwfError::FieldCount {
            line: lineno,
            found,
        });
    }
    Ok(Job {
        id: parse_field_i64(toks[0], lineno, 0)?.max(0) as u32,
        submit_time: parse_field_f64(toks[1], lineno, 1)?,
        trace_wait_time: parse_field_f64(toks[2], lineno, 2)?,
        run_time: parse_field_f64(toks[3], lineno, 3)?,
        used_procs: parse_field_i64(toks[4], lineno, 4)?,
        avg_cpu_time: parse_field_f64(toks[5], lineno, 5)?,
        used_memory: parse_field_f64(toks[6], lineno, 6)?,
        requested_procs: parse_field_i64(toks[7], lineno, 7)?,
        requested_time: parse_field_f64(toks[8], lineno, 8)?,
        requested_memory: parse_field_f64(toks[9], lineno, 9)?,
        status: JobStatus::from_swf(parse_field_i64(toks[10], lineno, 10)?),
        user_id: parse_field_i64(toks[11], lineno, 11)?,
        group_id: parse_field_i64(toks[12], lineno, 12)?,
        executable_id: parse_field_i64(toks[13], lineno, 13)?,
        queue_id: parse_field_i64(toks[14], lineno, 14)?,
        partition_id: parse_field_i64(toks[15], lineno, 15)?,
        preceding_job: parse_field_i64(toks[16], lineno, 16)?,
        think_time: parse_field_f64(toks[17], lineno, 17)?,
    })
}

pub(crate) fn parse_header_line(line: &str, header: &mut SwfHeader) {
    let body = line.trim_start_matches(';').trim();
    if let Some((key, value)) = body.split_once(':') {
        let key = key.trim();
        // Header keys are single words or CamelCase identifiers; anything
        // with internal whitespace is prose, not metadata.
        if !key.is_empty() && !key.contains(char::is_whitespace) {
            header
                .fields
                .insert(key.to_string(), value.trim().to_string());
            return;
        }
    }
    if !body.is_empty() {
        header.comments.push(body.to_string());
    }
}

/// Parse a complete SWF document from a buffered reader.
pub fn parse_reader<R: BufRead>(reader: R) -> Result<JobTrace, SwfError> {
    let mut header = SwfHeader::default();
    let mut jobs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with(';') {
            parse_header_line(trimmed, &mut header);
            continue;
        }
        jobs.push(parse_line(trimmed, lineno)?);
    }
    let max_procs = header
        .max_procs()
        .unwrap_or_else(|| jobs.iter().map(|j| j.procs()).max().unwrap_or(1));
    Ok(JobTrace::with_header(jobs, max_procs, header))
}

/// Parse a complete SWF document from a string.
pub fn parse_str(s: &str) -> Result<JobTrace, SwfError> {
    parse_reader(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; MaxProcs: 128
; MaxNodes: 64
; just a prose comment
1 0 5 100 4 -1 -1 4 120 -1 1 3 2 7 1 0 -1 -1
2 10 -1 50 -1 -1 -1 8 60 -1 0 4 2 7 1 0 -1 -1
";

    #[test]
    fn parses_header_and_jobs() {
        let t = parse_str(SAMPLE).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_procs(), 128);
        assert_eq!(t.header().fields.get("Version").unwrap(), "2.2");
        assert_eq!(t.header().comments, vec!["just a prose comment"]);
    }

    #[test]
    fn job_fields_land_in_the_right_place() {
        let t = parse_str(SAMPLE).unwrap();
        let j = &t.jobs()[0];
        assert_eq!(j.id, 1);
        assert_eq!(j.submit_time, 0.0);
        assert_eq!(j.trace_wait_time, 5.0);
        assert_eq!(j.run_time, 100.0);
        assert_eq!(j.used_procs, 4);
        assert_eq!(j.requested_procs, 4);
        assert_eq!(j.requested_time, 120.0);
        assert_eq!(j.status, JobStatus::Completed);
        assert_eq!(j.user_id, 3);
        assert_eq!(j.group_id, 2);
        assert_eq!(j.executable_id, 7);
    }

    #[test]
    fn unknown_markers_survive() {
        let t = parse_str(SAMPLE).unwrap();
        let j = &t.jobs()[1];
        assert_eq!(j.used_procs, -1);
        assert_eq!(j.trace_wait_time, -1.0);
        assert_eq!(j.status, JobStatus::Failed);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = parse_str("1 2 3\n").unwrap_err();
        match err {
            SwfError::FieldCount { line, found } => {
                assert_eq!(line, 1);
                assert_eq!(found, 3);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn rejects_non_numeric_field() {
        let line = "x 0 0 1 1 -1 -1 1 1 -1 1 1 1 1 1 1 -1 -1";
        let err = parse_str(line).unwrap_err();
        match err {
            SwfError::BadField { field, .. } => assert_eq!(field, 0),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn max_procs_falls_back_to_observed_jobs() {
        let t = parse_str("1 0 0 10 16 -1 -1 16 10 -1 1 1 1 1 1 1 -1 -1\n").unwrap();
        assert_eq!(t.max_procs(), 16);
    }

    #[test]
    fn integral_fields_accept_decimal_notation() {
        let line = "1.0 0 0 10 16.0 -1 -1 16 10 -1 1 1 1 1 1 1 -1 -1";
        let t = parse_str(line).unwrap();
        assert_eq!(t.jobs()[0].id, 1);
        assert_eq!(t.jobs()[0].used_procs, 16);
    }

    #[test]
    fn max_nodes_fallback_for_cluster_size() {
        let src = "; MaxNodes: 77\n1 0 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 1 -1 -1\n";
        let t = parse_str(src).unwrap();
        assert_eq!(t.max_procs(), 77);
    }

    #[test]
    fn empty_input_yields_empty_trace() {
        let t = parse_str("").unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.max_procs(), 1);
    }
}
