//! Property tests for the RL substrate: GAE identities, advantage
//! normalization, and masked categorical behavior.

use proptest::prelude::*;

use rlsched_rl::buffer::RolloutBuffer;
use rlsched_rl::categorical::{MaskedCategorical, MASK_OFF};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gae_telescopes_to_return_minus_value(
        rewards in prop::collection::vec(-50.0f64..50.0, 1..30),
        values in prop::collection::vec(-20.0f64..20.0, 30),
    ) {
        // With gamma = lambda = 1 and terminal bootstrap 0:
        // A_t = G_t - V_t exactly (telescoping sum of TD errors).
        let n = rewards.len();
        let mut buf = RolloutBuffer::new(1, 2, 1.0, 1.0);
        for i in 0..n {
            buf.store(&[0.0], &[0.0, 0.0], 0, rewards[i], values[i], -0.7);
        }
        buf.finish_path(0.0);
        let batch = RolloutBuffer::into_batch(vec![buf]);
        // Recompute expectations directly.
        let mut g = vec![0.0f64; n];
        let mut acc = 0.0;
        for i in (0..n).rev() {
            acc += rewards[i];
            g[i] = acc;
        }
        // returns must equal rewards-to-go
        for (i, (&r, &gi)) in batch.returns.iter().zip(&g).enumerate() {
            prop_assert!((r as f64 - gi).abs() < 1e-3,
                "return[{}] {} vs {}", i, r, gi);
        }
    }

    #[test]
    fn advantages_are_normalized(
        rewards in prop::collection::vec(-50.0f64..50.0, 2..40),
    ) {
        let n = rewards.len();
        let mut buf = RolloutBuffer::new(1, 2, 1.0, 0.95);
        for (i, &r) in rewards.iter().enumerate() {
            buf.store(&[i as f32], &[0.0, 0.0], i % 2, r, 0.1 * i as f64, -0.7);
        }
        buf.finish_path(0.0);
        let batch = RolloutBuffer::into_batch(vec![buf]);
        let mean: f64 = batch.advantages.iter().map(|&a| a as f64).sum::<f64>() / n as f64;
        prop_assert!(mean.abs() < 1e-4, "mean {mean}");
        if n >= 3 {
            let var: f64 = batch
                .advantages
                .iter()
                .map(|&a| (a as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            // Degenerate (all-equal) advantages give var 0 under the eps guard.
            prop_assert!(var < 1.2, "var {var}");
        }
    }

    #[test]
    fn categorical_sampling_respects_masks(
        weights in prop::collection::vec(0.01f32..5.0, 2..12),
        masked_idx in prop::collection::vec(any::<prop::sample::Index>(), 0..4),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let n = weights.len();
        let mut masked = vec![false; n];
        for m in &masked_idx {
            masked[m.index(n)] = true;
        }
        // Keep at least one valid action.
        masked[0] = false;
        let total: f32 = weights
            .iter()
            .zip(&masked)
            .filter(|(_, &m)| !m)
            .map(|(w, _)| *w)
            .sum();
        let logp: Vec<f32> = weights
            .iter()
            .zip(&masked)
            .map(|(w, &m)| if m { MASK_OFF } else { (w / total).ln() })
            .collect();
        let d = MaskedCategorical::new(&logp);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let a = d.sample(&mut rng);
            prop_assert!(!masked[a], "sampled masked action {a}");
        }
        prop_assert!(!masked[d.argmax()], "argmax picked a masked action");
    }

    #[test]
    fn entropy_bounds(
        weights in prop::collection::vec(0.01f32..5.0, 2..12),
    ) {
        let total: f32 = weights.iter().sum();
        let logp: Vec<f32> = weights.iter().map(|w| (w / total).ln()).collect();
        let h = MaskedCategorical::new(&logp).entropy();
        prop_assert!(h >= -1e-5, "entropy {h} negative");
        prop_assert!(
            h <= (weights.len() as f32).ln() + 1e-4,
            "entropy {h} exceeds ln(n)"
        );
    }

    #[test]
    fn delayed_reward_spreads_to_all_steps(
        len in 2usize..30,
        terminal in -100.0f64..-1.0,
    ) {
        // The paper's reward structure: zeros then one terminal value; with
        // gamma=1 every step's return equals the terminal reward.
        let mut buf = RolloutBuffer::new(1, 2, 1.0, 1.0);
        for i in 0..len {
            let r = if i == len - 1 { terminal } else { 0.0 };
            buf.store(&[0.0], &[0.0, 0.0], 0, r, 0.0, -0.7);
        }
        buf.finish_path(0.0);
        let batch = RolloutBuffer::into_batch(vec![buf]);
        for &r in &batch.returns {
            prop_assert!((r as f64 - terminal).abs() < 1e-3);
        }
    }
}
