//! One module per experiment family; see `DESIGN.md` §4 for the paper ↔
//! code index.

pub mod ablations;
pub mod figures;
pub mod tables;

use rlsched_sched::PriorityScheduler;
use rlsched_sim::{MetricKind, Policy, SimConfig};
use rlsched_swf::JobTrace;
use rlscheduler::{evaluate_policy, mean_metric, Agent};

/// Evaluate the five Table III heuristics plus an optional RL agent over
/// shared windows; returns `(name, mean metric)` per scheduler, in the
/// paper's column order (FCFS, WFP3, UNICEP, SJF, F1, RL).
pub fn scheduler_row(
    windows: &[JobTrace],
    sim: SimConfig,
    metric: MetricKind,
    rl: Option<&Agent>,
) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for mut sched in PriorityScheduler::table3() {
        let results = evaluate_policy(windows, sim, &mut sched);
        out.push((sched.name().to_string(), mean_metric(&results, metric)));
    }
    if let Some(agent) = rl {
        let mut policy = agent.as_policy();
        let results = evaluate_policy(windows, sim, &mut policy);
        out.push(("RL".to_string(), mean_metric(&results, metric)));
    }
    out
}

/// The winner of a row under the metric's orientation.
pub fn best_of(row: &[(String, f64)], metric: MetricKind) -> (String, f64) {
    let pick = if metric.maximize() {
        row.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    } else {
        row.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    };
    pick.cloned().expect("non-empty row")
}

/// The loser of a row under the metric's orientation.
pub fn worst_of(row: &[(String, f64)], metric: MetricKind) -> (String, f64) {
    let pick = if metric.maximize() {
        row.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    } else {
        row.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    };
    pick.cloned().expect("non-empty row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_and_worst_respect_orientation() {
        let row = vec![("a".to_string(), 2.0), ("b".to_string(), 5.0)];
        assert_eq!(best_of(&row, MetricKind::BoundedSlowdown).0, "a");
        assert_eq!(worst_of(&row, MetricKind::BoundedSlowdown).0, "b");
        assert_eq!(best_of(&row, MetricKind::Utilization).0, "b");
        assert_eq!(worst_of(&row, MetricKind::Utilization).0, "a");
    }

    #[test]
    fn scheduler_row_covers_table3() {
        use rlsched_swf::Job;
        let jobs = (0..40u32)
            .map(|i| Job::new(i + 1, i as f64 * 10.0, 50.0, 1 + (i % 3), 100.0))
            .collect();
        let t = JobTrace::new(jobs, 4);
        let windows = vec![t];
        let row = scheduler_row(
            &windows,
            SimConfig::default(),
            MetricKind::BoundedSlowdown,
            None,
        );
        let names: Vec<&str> = row.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["FCFS", "WFP3", "UNICEP", "SJF", "F1"]);
        assert!(row.iter().all(|(_, v)| *v >= 1.0));
    }
}
