//! Property-based fused ≡ tape gradient parity: for random MLP-chain
//! policies (flat and kernel heads), random PPO batches and random
//! hyperparameters, the tape-free fused forward+backward must produce the
//! **same bits** as the autodiff tape building the exact `Ppo::update`
//! op pipeline — loss, selected log-probs, and every parameter gradient.
//! CI runs this on both kernel dispatch arms (default SIMD and
//! `RLSCHED_FORCE_SCALAR=1`); the contract holds on each arm separately.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlsched_nn::fused::{self, FusedHead, FusedPolicy, FusedScratch};
use rlsched_nn::{Activation, Graph, Mlp, Network, ParamBinds, Tensor};

/// Build the exact policy-loss graph `Ppo::update` builds on the tape
/// and return `(loss, selected logp, grads in bind order)`.
#[allow(clippy::too_many_arguments)]
fn tape_policy_grads(
    mlp: &Mlp,
    head: FusedHead,
    obs: &[f32],
    masks: &[f32],
    actions: &[usize],
    advantages: &[f32],
    logp_old: &[f32],
    clip: f32,
    ent_coef: f32,
    n: usize,
) -> (f32, Vec<f32>, Vec<Tensor>) {
    let width = masks.len() / n;
    let mut g = Graph::new();
    let mut binds = ParamBinds::new();
    let o = g.input_from(obs, &[n, obs.len() / n]);
    let m = g.input_from(masks, &[n, width]);
    let logits = match head {
        FusedHead::Flat => mlp.forward(&mut g, o, &mut binds),
        FusedHead::Kernel { window } => {
            let per_job = g.reshape(o, &[n * window, mlp.in_dim()]);
            let scores = mlp.forward(&mut g, per_job, &mut binds);
            g.reshape(scores, &[n, window])
        }
    };
    let masked = g.add(logits, m);
    let logp_all = g.log_softmax(masked);
    let logp = g.select_cols(logp_all, actions);
    let old = g.input_from(logp_old, &[n]);
    let diff = g.sub(logp, old);
    let ratio = g.exp(diff);
    let advv = g.input_from(advantages, &[n]);
    let surr1 = g.mul(ratio, advv);
    let clipped = g.clamp(ratio, 1.0 - clip, 1.0 + clip);
    let surr2 = g.mul(clipped, advv);
    let obj = g.min_elem(surr1, surr2);
    let mean_obj = g.mean(obj);
    let mut loss = g.scale(mean_obj, -1.0);
    if ent_coef != 0.0 {
        let p = g.exp(logp_all);
        let plogp = g.mul(p, logp_all);
        let row = g.sum_rows(plogp);
        let ent = g.mean(row);
        let weighted = g.scale(ent, ent_coef);
        loss = g.add(loss, weighted);
    }
    g.backward(loss);
    let sel = g.value(logp).data().to_vec();
    let loss_v = g.value(loss).item();
    let grads = binds.take_grads(&mut g);
    (loss_v, sel, grads)
}

fn lcg(seed: &mut u64) -> f32 {
    // Deterministic input stream independent of the rand shim.
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn policy_grads_match_tape_bitwise(
        n in 1usize..13,
        width in 2usize..9,
        hidden in prop::collection::vec(prop_oneof![Just(4usize), Just(8), Just(16), Just(32)], 1..3),
        kernel_head in any::<bool>(),
        features in 3usize..9,
        net_seed in any::<u64>(),
        data_seed in any::<u64>(),
        ent_coef in prop_oneof![Just(0.0f32), Just(0.01), Just(0.1)],
        clip in 0.1f32..0.4,
    ) {
        let (head, in_dim, out_dim) = if kernel_head {
            (FusedHead::Kernel { window: width }, features, 1)
        } else {
            (FusedHead::Flat, features * 2, width)
        };
        let mut dims = vec![in_dim];
        dims.extend(&hidden);
        dims.push(out_dim);
        let mut rng = StdRng::seed_from_u64(net_seed);
        let mlp = Mlp::new(&dims, Activation::Relu, Activation::Identity, &mut rng);
        let obs_dim = if kernel_head { width * features } else { in_dim };

        let mut s = data_seed | 1;
        let obs: Vec<f32> = (0..n * obs_dim).map(|_| lcg(&mut s) * 2.0).collect();
        let masks: Vec<f32> = (0..n * width)
            .map(|i| if lcg(&mut s) > 0.35 && i % width != 0 { -1.0e9 } else { 0.0 })
            .collect();
        let actions: Vec<usize> = (0..n).map(|_| ((lcg(&mut s).abs() * 97.0) as usize) % width).collect();
        let advantages: Vec<f32> = (0..n).map(|_| lcg(&mut s) * 4.0).collect();
        let logp_old: Vec<f32> = (0..n).map(|_| -0.1 - lcg(&mut s).abs() * 3.0).collect();

        let (tape_loss, tape_sel, tape_grads) = tape_policy_grads(
            &mlp, head, &obs, &masks, &actions, &advantages, &logp_old, clip, ent_coef, n,
        );

        let p = FusedPolicy { mlp: &mlp, head };
        let mut scratch = FusedScratch::new();
        fused::policy_forward(&p, &obs, &masks, &actions, n, &mut scratch);
        prop_assert_eq!(scratch.selected_logp(), tape_sel.as_slice(),
            "selected log-probs must match the tape exactly");
        let fused_loss = fused::policy_loss_and_grads(
            &p, &obs, &actions, &advantages, &logp_old, clip, ent_coef, n, &mut scratch,
        );
        prop_assert_eq!(fused_loss, tape_loss, "loss value");
        prop_assert_eq!(scratch.grads().len(), tape_grads.len());
        for (i, (f, t)) in scratch.grads().iter().zip(&tape_grads).enumerate() {
            prop_assert_eq!(f.shape(), t.shape(), "grad {} shape", i);
            prop_assert_eq!(f.data(), t.data(), "grad {} bits diverged from the tape", i);
        }
    }

    #[test]
    fn value_grads_match_tape_bitwise(
        n in 1usize..17,
        obs_dim in 4usize..40,
        h in prop_oneof![Just(8usize), Just(16), Just(32)],
        net_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(net_seed);
        let mlp = Mlp::new(&[obs_dim, h, h / 2, 1], Activation::Relu, Activation::Identity, &mut rng);
        let mut s = data_seed | 1;
        let obs: Vec<f32> = (0..n * obs_dim).map(|_| lcg(&mut s) * 2.0).collect();
        let returns: Vec<f32> = (0..n).map(|_| lcg(&mut s) * 10.0).collect();

        // The exact value-loss graph Ppo::update builds.
        let mut g = Graph::new();
        let mut binds = ParamBinds::new();
        let o = g.input_from(&obs, &[n, obs_dim]);
        let v = mlp.forward(&mut g, o, &mut binds);
        let r = g.input_from(&returns, &[n, 1]);
        let d = g.sub(v, r);
        let sq = g.mul(d, d);
        let loss = g.mean(sq);
        g.backward(loss);
        let tape_loss = g.value(loss).item();
        let tape_grads = binds.take_grads(&mut g);

        let mut scratch = FusedScratch::new();
        fused::value_forward(&mlp, &obs, n, &mut scratch);
        let fused_loss = fused::value_loss_and_grads(&mlp, &obs, &returns, n, &mut scratch);
        prop_assert_eq!(fused_loss, tape_loss, "value loss");
        for (i, (f, t)) in scratch.grads().iter().zip(&tape_grads).enumerate() {
            prop_assert_eq!(f.data(), t.data(), "value grad {} diverged", i);
        }
    }
}
