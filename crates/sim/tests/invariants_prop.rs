//! Property tests of the SchedGym conservation invariants under random
//! traces, random scheduling orders, and both backfilling modes.

use proptest::prelude::*;

use rlsched_sim::{BackfillMode, SchedSession, SimConfig};
use rlsched_swf::{Job, JobTrace};

prop_compose! {
    fn arb_sim_job()(
        submit in 0.0f64..5_000.0,
        run in 1.0f64..2_000.0,
        procs in 1u32..8,
        over in 1.0f64..3.0,
    ) -> (f64, f64, u32, f64) {
        (submit, run, procs, run * over)
    }
}

fn trace_of(jobs: Vec<(f64, f64, u32, f64)>) -> JobTrace {
    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(i, (s, r, p, req))| Job::new(i as u32 + 1, s, r, p, req))
        .collect();
    JobTrace::new(jobs, 8)
}

/// Drive a whole episode choosing queue positions from `picks` (wrapped
/// into range), verifying machine invariants at every step.
fn run_with_picks(
    trace: &JobTrace,
    cfg: SimConfig,
    picks: &[usize],
) -> rlsched_sim::EpisodeMetrics {
    let mut s = SchedSession::new(trace, cfg).unwrap();
    let mut i = 0;
    while !s.done() {
        let pos = picks[i % picks.len()] % s.queue_len();
        i += 1;
        s.step(pos).unwrap();
        assert!(s.free_procs() <= s.total_procs());
    }
    s.metrics().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_job_runs_exactly_once(
        jobs in prop::collection::vec(arb_sim_job(), 1..50),
        picks in prop::collection::vec(0usize..64, 1..32),
        easy in any::<bool>(),
    ) {
        let trace = trace_of(jobs);
        let cfg = SimConfig {
            backfill: if easy { BackfillMode::Easy } else { BackfillMode::None },
        };
        let m = run_with_picks(&trace, cfg, &picks);
        prop_assert_eq!(m.outcomes().len(), trace.len());
        let mut seen: Vec<usize> = m.outcomes().iter().map(|o| o.job_index).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), trace.len(), "duplicate or missing jobs");
    }

    #[test]
    fn causality_and_duration_hold(
        jobs in prop::collection::vec(arb_sim_job(), 1..50),
        picks in prop::collection::vec(0usize..64, 1..32),
        easy in any::<bool>(),
    ) {
        let trace = trace_of(jobs);
        let cfg = SimConfig {
            backfill: if easy { BackfillMode::Easy } else { BackfillMode::None },
        };
        let m = run_with_picks(&trace, cfg, &picks);
        let sanitized = trace.sanitized();
        for o in m.outcomes() {
            let job = &sanitized.jobs()[o.job_index];
            prop_assert!(o.start >= job.submit_time, "job started before submission");
            prop_assert!((o.end - o.start - job.actual_runtime()).abs() < 1e-6);
        }
    }

    #[test]
    fn processors_never_oversubscribed(
        jobs in prop::collection::vec(arb_sim_job(), 1..40),
        picks in prop::collection::vec(0usize..64, 1..16),
        easy in any::<bool>(),
    ) {
        let trace = trace_of(jobs);
        let cfg = SimConfig {
            backfill: if easy { BackfillMode::Easy } else { BackfillMode::None },
        };
        let m = run_with_picks(&trace, cfg, &picks);
        // Reconstruct concurrent usage at every start instant.
        for probe in m.outcomes() {
            let t = probe.start;
            let used: u64 = m
                .outcomes()
                .iter()
                .filter(|o| o.start <= t && t < o.end)
                .map(|o| o.procs as u64)
                .sum();
            prop_assert!(used <= 8, "{used} procs in use at t={t}");
        }
    }

    #[test]
    fn same_picks_same_schedule(
        jobs in prop::collection::vec(arb_sim_job(), 1..30),
        picks in prop::collection::vec(0usize..64, 1..16),
    ) {
        let trace = trace_of(jobs);
        let a = run_with_picks(&trace, SimConfig::with_backfill(), &picks);
        let b = run_with_picks(&trace, SimConfig::with_backfill(), &picks);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fcfs_order_preserves_queue_fifo_starts(
        jobs in prop::collection::vec(arb_sim_job(), 2..40),
    ) {
        // Under FCFS *without backfilling*, start times are monotone in
        // submit order for jobs the scheduler actually ordered (head picks).
        let trace = trace_of(jobs);
        let m = run_with_picks(&trace, SimConfig::no_backfill(), &[0]);
        let mut outcomes = m.outcomes().to_vec();
        outcomes.sort_by(|a, b| a.submit.partial_cmp(&b.submit).unwrap()
            .then(a.job_index.cmp(&b.job_index)));
        for w in outcomes.windows(2) {
            prop_assert!(w[0].start <= w[1].start + 1e-9,
                "FCFS/no-backfill must start jobs in arrival order");
        }
    }

    #[test]
    fn metrics_are_internally_consistent(
        jobs in prop::collection::vec(arb_sim_job(), 1..40),
        picks in prop::collection::vec(0usize..64, 1..16),
    ) {
        let trace = trace_of(jobs);
        let m = run_with_picks(&trace, SimConfig::with_backfill(), &picks);
        prop_assert!(m.avg_bounded_slowdown() >= 1.0 - 1e-12);
        prop_assert!(m.avg_slowdown() >= 1.0 - 1e-12);
        prop_assert!(m.avg_turnaround() >= m.avg_waiting_time());
        let u = m.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        prop_assert!(m.max_user_bounded_slowdown() >= m.avg_bounded_slowdown() - 1e-9,
            "the max user's average bounds the global average from above");
    }
}
