//! Vectorized environments: step every live episode in lockstep and
//! score the whole batch through **one** stacked policy forward.
//!
//! After the per-step allocations and matmuls were eliminated, rollout
//! wall time was dominated by doing one tiny policy forward per env per
//! step. [`VecEnv`] removes that: it owns N [`Env`]s, exposes
//! [`VecEnv::reset_all`] / [`VecEnv::step_all`] writing the observations
//! and masks of every *live* env into one caller-owned `[live, obs_dim]`
//! matrix, and the sampler scores that matrix in a single batched matmul
//! per simulator tick (for the kernel policy the stack reshapes to
//! `[live × K, F]` job rows — one gemm for every decision of the tick).
//!
//! # Lockstep protocol
//!
//! A `VecEnv` is given a *seed schedule* at [`VecEnv::reset_all`]: one
//! seed per episode to collect. The first `min(n_envs, seeds)` episodes
//! start immediately, one per slot. Each [`VecEnv::step_all`] applies one
//! action per live slot (in stacked-row order) and rewrites the stacked
//! matrices. Envs that finish an episode are **auto-reset** onto the next
//! unclaimed seed; when the schedule is exhausted a finished slot goes
//! dead and simply stops occupying a row — the stacked matrix compacts to
//! the live slots (ascending slot order) so the batched forward never
//! scores a corpse. Collection ends when [`VecEnv::live_count`] hits 0.
//!
//! # Determinism and parity
//!
//! Episode trajectories depend only on the episode's seed, never on which
//! slot ran them or how many other envs were co-resident: the env fully
//! re-derives its state from the seed at reset, per-episode sampling RNGs
//! are derived from the seed, and the nn forward kernels guarantee
//! row-count invariance (each stacked row scores to the same bits as a
//! single-row forward — see `rlsched-nn`'s `simd` module docs). A
//! `VecEnv` of size 1 is therefore *exactly* the old per-env stepping,
//! and `VecEnv(n)` rollouts are bit-identical to n sequential single-env
//! rollouts — pinned by the parity tests in this crate and `rlscheduler`.
//!
//! # Migrating from the single-env API
//!
//! [`Env`] itself is unchanged — implementations keep writing into
//! caller-owned buffers and need no edits. What moved is the *driver*:
//! code that looped `env.reset(..); loop { env.step(..) }` per episode
//! should construct a `VecEnv` (borrowed envs work via the blanket
//! `impl Env for &mut E`) and use the lockstep loop, or call
//! `sampler::collect_rollouts`, which now does exactly that internally.

use rlsched_nn::Scratch;

use crate::env::{Env, StepOutcome};
use crate::ppo::PolicyModel;

/// Forwarding impl so a `VecEnv` can borrow caller-owned environments
/// (`VecEnv<&mut E>`) instead of taking them by value.
impl<E: Env + ?Sized> Env for &mut E {
    fn obs_dim(&self) -> usize {
        (**self).obs_dim()
    }
    fn n_actions(&self) -> usize {
        (**self).n_actions()
    }
    fn reset(&mut self, seed: u64, obs: &mut Vec<f32>, mask: &mut Vec<f32>) {
        (**self).reset(seed, obs, mask)
    }
    fn step(&mut self, action: usize, obs: &mut Vec<f32>, mask: &mut Vec<f32>) -> StepOutcome {
        (**self).step(action, obs, mask)
    }
}

/// Scores a stack of observation rows through one batched forward: the
/// single code path shared by training rollouts, greedy evaluation and
/// batch serving.
///
/// Every [`PolicyModel`] is a `BatchPolicy` via its
/// [`PolicyModel::log_probs_fast_batch`] fast path (blanket impl), and
/// serving tiers can implement it over other representations — e.g.
/// `rlscheduler`'s packed, weight-transposed MLP snapshot. The contract:
/// row `i` of the output must be bit-identical to scoring row `i` alone
/// (`rows == 1`), so batched and sequential decisions agree exactly.
pub trait BatchPolicy {
    /// Write `[rows, n_actions]` masked log-probability rows for the
    /// stacked observations (`obs` is `[rows, obs_dim]` row-major,
    /// `masks` `[rows, n_actions]`). Must not allocate at steady state.
    fn log_probs_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    );
}

impl<P: PolicyModel + ?Sized> BatchPolicy for P {
    fn log_probs_batch(
        &self,
        obs: &[f32],
        masks: &[f32],
        rows: usize,
        scratch: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        self.log_probs_fast_batch(obs, masks, rows, scratch, out);
    }
}

/// Argmax actions for `rows` stacked observations through one
/// [`BatchPolicy`] forward — the greedy tail shared by batch serving
/// (`Ppo::greedy_batch_with`, `Agent::score_batch`) and lockstep greedy
/// evaluation. Allocation-free at steady state.
pub fn greedy_batch<B: BatchPolicy + ?Sized>(
    policy: &B,
    obs: &[f32],
    masks: &[f32],
    rows: usize,
    scratch: &mut crate::ppo::ActorScratch,
    actions: &mut Vec<usize>,
) {
    assert!(rows > 0, "batched selection needs at least one row");
    assert_eq!(obs.len() % rows, 0, "obs volume must divide into rows");
    assert_eq!(masks.len() % rows, 0, "mask volume must divide into rows");
    let n_actions = masks.len() / rows;
    policy.log_probs_batch(obs, masks, rows, &mut scratch.nn, &mut scratch.logp);
    actions.clear();
    actions.extend((0..rows).map(|i| {
        crate::categorical::MaskedCategorical::new(
            &scratch.logp[i * n_actions..(i + 1) * n_actions],
        )
        .argmax()
    }));
}

/// Per-slot result of one [`VecEnv::step_all`] tick, in stacked-row
/// order of the rows that were stepped (i.e. the *previous* tick's live
/// rows).
#[derive(Debug, Clone, Copy)]
pub struct SlotOutcome {
    /// The slot that was stepped.
    pub slot: usize,
    /// The episode (index into the seed schedule) the action belonged to.
    pub episode: usize,
    /// Reward for the action just taken.
    pub reward: f64,
    /// True when that episode just ended.
    pub done: bool,
    /// The episode's raw objective value, reported once at `done`.
    pub episode_metric: Option<f64>,
    /// `Some(e)` when the slot auto-reset onto episode `e` (the next
    /// unclaimed seed) within this tick; `None` while the episode
    /// continues or when the slot went dead.
    pub next_episode: Option<usize>,
}

/// N environments stepped in lockstep, exposing all live observations as
/// one stacked matrix. See the module docs for the protocol.
#[derive(Debug)]
pub struct VecEnv<E: Env> {
    envs: Vec<E>,
    obs_dim: usize,
    n_actions: usize,
    /// Per-slot liveness; dead slots occupy no stacked row.
    live: Vec<bool>,
    /// Per-slot episode index (valid while live).
    episode: Vec<usize>,
    /// The episode seed schedule of the current collection round.
    seeds: Vec<u64>,
    /// Next unclaimed index into `seeds`.
    next_seed: usize,
    n_live: usize,
}

impl<E: Env> VecEnv<E> {
    /// Wrap `envs` (at least one; all must agree on `obs_dim` and
    /// `n_actions`). Call [`VecEnv::reset_all`] before stepping.
    pub fn new(envs: Vec<E>) -> Self {
        assert!(!envs.is_empty(), "VecEnv needs at least one environment");
        let obs_dim = envs[0].obs_dim();
        let n_actions = envs[0].n_actions();
        for e in &envs {
            assert_eq!(e.obs_dim(), obs_dim, "mismatched obs_dim across envs");
            assert_eq!(e.n_actions(), n_actions, "mismatched n_actions across envs");
        }
        let n = envs.len();
        VecEnv {
            envs,
            obs_dim,
            n_actions,
            live: vec![false; n],
            episode: vec![0; n],
            seeds: Vec::new(),
            next_seed: 0,
            n_live: 0,
        }
    }

    /// Number of env slots.
    pub fn n_envs(&self) -> usize {
        self.envs.len()
    }

    /// Observation width of every env.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Action-space size of every env.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Slots currently running an episode (== stacked rows).
    pub fn live_count(&self) -> usize {
        self.n_live
    }

    /// True when every scheduled episode has finished.
    pub fn is_done(&self) -> bool {
        self.n_live == 0
    }

    /// Live slot indices in stacked-row order (ascending).
    pub fn live_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(s, &l)| l.then_some(s))
    }

    /// The episode index slot `s` is currently running (meaningful only
    /// while the slot is live).
    pub fn episode_of(&self, slot: usize) -> usize {
        self.episode[slot]
    }

    /// Recover the wrapped environments (e.g. to read terminal state
    /// after a collection round).
    pub fn into_envs(self) -> Vec<E> {
        self.envs
    }

    /// Shared access to the wrapped environments.
    pub fn envs(&self) -> &[E] {
        &self.envs
    }

    /// Install the seed schedule (one seed per episode, in collection
    /// order) and start the first `min(n_envs, seeds)` episodes. Writes
    /// the stacked `[live, obs_dim]` observations and `[live, n_actions]`
    /// masks into the caller's buffers (cleared first): every env appends
    /// its row directly — no per-env staging copy.
    pub fn reset_all(&mut self, seeds: &[u64], obs: &mut Vec<f32>, masks: &mut Vec<f32>) {
        assert!(!seeds.is_empty(), "need at least one episode seed");
        self.seeds.clear();
        self.seeds.extend_from_slice(seeds);
        let active = self.envs.len().min(seeds.len());
        self.next_seed = active;
        self.n_live = active;
        obs.clear();
        masks.clear();
        self.live.iter_mut().for_each(|l| *l = false);
        for (slot, &seed) in seeds.iter().enumerate().take(active) {
            self.live[slot] = true;
            self.episode[slot] = slot;
            self.envs[slot].reset(seed, obs, masks);
            debug_assert_eq!(obs.len(), (slot + 1) * self.obs_dim, "env appended one row");
        }
    }

    /// Apply one action per live slot (`actions` in stacked-row order),
    /// auto-resetting finished envs onto the next unclaimed seed and
    /// retiring them when the schedule is exhausted. Rewrites the stacked
    /// observations/masks for the slots that are live *after* the tick —
    /// each surviving env appends its next row directly to the caller's
    /// buffers (a terminal step appends nothing; the respawn reset
    /// appends the fresh episode's first row) — and pushes one
    /// [`SlotOutcome`] per stepped row into `outcomes` (cleared first).
    /// Allocation-free at steady state.
    pub fn step_all(
        &mut self,
        actions: &[usize],
        obs: &mut Vec<f32>,
        masks: &mut Vec<f32>,
        outcomes: &mut Vec<SlotOutcome>,
    ) {
        assert_eq!(
            actions.len(),
            self.n_live,
            "one action per live environment"
        );
        obs.clear();
        masks.clear();
        outcomes.clear();
        let mut row = 0;
        for slot in 0..self.envs.len() {
            if !self.live[slot] {
                continue;
            }
            let action = actions[row];
            row += 1;
            // The episode this action belongs to, captured before any
            // respawn advances the slot's episode index.
            let episode = self.episode[slot];
            let rows_before = obs.len();
            let out = self.envs[slot].step(action, obs, masks);
            debug_assert_eq!(
                obs.len() - rows_before,
                if out.done { 0 } else { self.obs_dim },
                "env must append exactly one row, or none at terminal"
            );
            let mut next_episode = None;
            if out.done {
                if self.next_seed < self.seeds.len() {
                    let ep = self.next_seed;
                    self.next_seed += 1;
                    self.episode[slot] = ep;
                    self.envs[slot].reset(self.seeds[ep], obs, masks);
                    next_episode = Some(ep);
                } else {
                    self.live[slot] = false;
                    self.n_live -= 1;
                }
            }
            outcomes.push(SlotOutcome {
                slot,
                episode,
                reward: out.reward,
                done: out.done,
                episode_metric: out.episode_metric,
                next_episode,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::BanditEnv;

    fn venv(n: usize, episode_len: usize) -> VecEnv<BanditEnv> {
        VecEnv::new(
            (0..n)
                .map(|_| BanditEnv::new(3, episode_len, vec![]))
                .collect(),
        )
    }

    #[test]
    fn reset_all_stacks_live_rows() {
        let mut v = venv(3, 4);
        let (mut obs, mut masks) = (Vec::new(), Vec::new());
        v.reset_all(&[1, 2, 3], &mut obs, &mut masks);
        assert_eq!(v.live_count(), 3);
        assert_eq!(obs.len(), 3 * v.obs_dim());
        assert_eq!(masks.len(), 3 * v.n_actions());
        assert_eq!(v.live_slots().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn fewer_seeds_than_envs_leaves_slots_dead() {
        let mut v = venv(4, 3);
        let (mut obs, mut masks) = (Vec::new(), Vec::new());
        v.reset_all(&[7, 8], &mut obs, &mut masks);
        assert_eq!(v.live_count(), 2);
        assert_eq!(obs.len(), 2 * v.obs_dim());
        assert_eq!(v.live_slots().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn lockstep_runs_all_episodes_and_autoresets() {
        // 2 slots, 5 episodes of 3 steps: slots must respawn onto seeds
        // 2, 3, 4 in claim order and die when the schedule is dry.
        let mut v = venv(2, 3);
        let (mut obs, mut masks) = (Vec::new(), Vec::new());
        let mut outcomes = Vec::new();
        v.reset_all(&[0, 1, 2, 3, 4], &mut obs, &mut masks);
        let mut finished = Vec::new();
        let mut respawns = Vec::new();
        let mut ticks = 0;
        while !v.is_done() {
            let actions = vec![0usize; v.live_count()];
            v.step_all(&actions, &mut obs, &mut masks, &mut outcomes);
            for o in &outcomes {
                if o.done {
                    finished.push(o.episode);
                    assert!(o.episode_metric.is_some());
                }
                if let Some(e) = o.next_episode {
                    respawns.push(e);
                }
            }
            assert_eq!(obs.len(), v.live_count() * v.obs_dim());
            ticks += 1;
            assert!(ticks < 100, "lockstep loop must terminate");
        }
        finished.sort_unstable();
        assert_eq!(finished, vec![0, 1, 2, 3, 4], "every episode finishes once");
        assert_eq!(respawns, vec![2, 3, 4], "seeds claimed in schedule order");
        // 5 episodes x 3 steps across 2 slots, in lockstep.
        assert_eq!(ticks, 9, "ceil(5/2) * 3 lockstep ticks");
    }

    #[test]
    fn outcomes_attribute_actions_to_the_finished_episode() {
        let mut v = venv(1, 2);
        let (mut obs, mut masks) = (Vec::new(), Vec::new());
        let mut outcomes = Vec::new();
        v.reset_all(&[5, 6], &mut obs, &mut masks);
        v.step_all(&[0], &mut obs, &mut masks, &mut outcomes);
        assert_eq!(outcomes[0].episode, 0);
        assert!(!outcomes[0].done);
        v.step_all(&[0], &mut obs, &mut masks, &mut outcomes);
        // The terminal action of episode 0 is attributed to episode 0
        // even though the slot respawned onto episode 1 within the tick.
        assert_eq!(outcomes[0].episode, 0);
        assert!(outcomes[0].done);
        assert_eq!(outcomes[0].next_episode, Some(1));
        assert_eq!(v.episode_of(0), 1);
    }

    #[test]
    #[should_panic(expected = "one action per live environment")]
    fn step_all_checks_action_count() {
        let mut v = venv(2, 3);
        let (mut obs, mut masks) = (Vec::new(), Vec::new());
        v.reset_all(&[1, 2], &mut obs, &mut masks);
        v.step_all(&[0], &mut obs, &mut masks, &mut Vec::new());
    }

    #[test]
    fn borrowed_envs_work_through_the_forwarding_impl() {
        let mut owned: Vec<BanditEnv> = (0..2).map(|_| BanditEnv::new(3, 2, vec![])).collect();
        let mut v: VecEnv<&mut BanditEnv> = VecEnv::new(owned.iter_mut().collect());
        let (mut obs, mut masks) = (Vec::new(), Vec::new());
        let mut outcomes = Vec::new();
        v.reset_all(&[1, 2], &mut obs, &mut masks);
        while !v.is_done() {
            let actions = vec![1usize; v.live_count()];
            v.step_all(&actions, &mut obs, &mut masks, &mut outcomes);
        }
        drop(v);
        // The borrowed envs observed the steps.
        assert!(owned.iter().all(|e| e.t == 2));
    }
}
