//! The episode driver: run one policy over one job sequence and report the
//! metrics of §II-A3. This is the evaluation primitive behind every table in
//! the paper (each table cell = mean over 10 sampled 1024-job episodes).

use rlsched_swf::JobTrace;

use crate::error::SimError;
use crate::metrics::EpisodeMetrics;
use crate::policy::Policy;
use crate::session::{SchedSession, SimConfig};

/// Run `policy` over the whole `trace` and return the episode metrics.
pub fn run_episode<P: Policy + ?Sized>(
    trace: &JobTrace,
    cfg: SimConfig,
    policy: &mut P,
) -> Result<EpisodeMetrics, SimError> {
    let mut session = SchedSession::new(trace, cfg)?;
    while !session.done() {
        let view = session.view();
        debug_assert!(
            !view.waiting.is_empty(),
            "decision points always have waiting jobs"
        );
        let pos = policy.select(&view);
        session.step(pos)?;
    }
    session.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::QueueView;
    use rlsched_swf::Job;

    struct Fcfs;
    impl Policy for Fcfs {
        fn select(&mut self, _: &QueueView<'_>) -> usize {
            0
        }
        fn name(&self) -> &str {
            "FCFS"
        }
    }

    /// Shortest-requested-time-first, implemented inline to keep this crate
    /// independent of the sched crate.
    struct Sjf;
    impl Policy for Sjf {
        fn select(&mut self, view: &QueueView<'_>) -> usize {
            view.waiting
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.job.time_bound().partial_cmp(&b.job.time_bound()).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap()
        }
        fn name(&self) -> &str {
            "SJF"
        }
    }

    fn convoy_trace() -> JobTrace {
        // A classic convoy: one huge job and many tiny ones, all submitted
        // together so the scheduler's ordering choice matters. SJF must beat
        // FCFS on average waiting time.
        let mut jobs = vec![Job::new(1, 0.0, 1000.0, 4, 1000.0)];
        for i in 0..10 {
            jobs.push(Job::new(i + 2, 0.0, 10.0, 4, 10.0));
        }
        JobTrace::new(jobs, 4)
    }

    #[test]
    fn sjf_beats_fcfs_on_convoy() {
        let t = convoy_trace();
        let fcfs = run_episode(&t, SimConfig::default(), &mut Fcfs).unwrap();
        let sjf = run_episode(&t, SimConfig::default(), &mut Sjf).unwrap();
        assert!(
            sjf.avg_waiting_time() < fcfs.avg_waiting_time(),
            "SJF {} should beat FCFS {}",
            sjf.avg_waiting_time(),
            fcfs.avg_waiting_time()
        );
        assert!(sjf.avg_bounded_slowdown() < fcfs.avg_bounded_slowdown());
    }

    #[test]
    fn all_jobs_scheduled_exactly_once() {
        let t = convoy_trace();
        let m = run_episode(&t, SimConfig::default(), &mut Fcfs).unwrap();
        assert_eq!(m.outcomes().len(), t.len());
        let mut seen: Vec<usize> = m.outcomes().iter().map(|o| o.job_index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
    }

    #[test]
    fn deterministic_across_runs() {
        let t = convoy_trace();
        let a = run_episode(&t, SimConfig::with_backfill(), &mut Sjf).unwrap();
        let b = run_episode(&t, SimConfig::with_backfill(), &mut Sjf).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_propagates_error() {
        let t = JobTrace::new(vec![], 4);
        assert!(run_episode(&t, SimConfig::default(), &mut Fcfs).is_err());
    }
}
