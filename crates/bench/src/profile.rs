//! Experiment scale profiles and agent construction helpers.

use rlsched_rl::PpoConfig;
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_swf::JobTrace;
use rlsched_workload::NamedWorkload;
use rlscheduler::{
    train, Agent, AgentConfig, FilterMode, ObsConfig, PolicyKind, TrainConfig, TrainingCurve,
};

/// Scale knobs for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Profile label ("quick" / "full").
    pub name: &'static str,
    /// Jobs generated per workload (paper: first 10K of each trace).
    pub trace_jobs: usize,
    /// Training epochs (paper: 100).
    pub epochs: usize,
    /// Trajectories per epoch (paper: 100).
    pub trajectories: usize,
    /// Jobs per training trajectory (paper: 256).
    pub train_seq: usize,
    /// Observation window / action space (paper: 128).
    pub max_obsv: usize,
    /// PPO iterations per epoch for each of policy and value nets
    /// (paper: 80).
    pub ppo_iters: usize,
    /// Minibatch size per PPO iteration (None = full batch).
    pub minibatch: Option<usize>,
    /// Evaluation sequences per table cell (paper: 10).
    pub eval_seqs: usize,
    /// Jobs per evaluation sequence (paper: 1024).
    pub eval_len: usize,
    /// Sequences sampled when fitting the trajectory filter.
    pub filter_fit: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Profile {
    /// Laptop-scale profile: minutes, same shapes.
    pub fn quick() -> Self {
        Profile {
            name: "quick",
            trace_jobs: 3000,
            epochs: 15,
            trajectories: 14,
            train_seq: 128,
            max_obsv: 64,
            ppo_iters: 15,
            minibatch: Some(512),
            eval_seqs: 5,
            eval_len: 256,
            filter_fit: 150,
            seed: 20200917,
        }
    }

    /// Paper-scale profile (§V-A).
    pub fn full() -> Self {
        Profile {
            name: "full",
            trace_jobs: 10_000,
            epochs: 100,
            trajectories: 100,
            train_seq: 256,
            max_obsv: 128,
            ppo_iters: 80,
            minibatch: Some(2048),
            eval_seqs: 10,
            eval_len: 1024,
            filter_fit: 1000,
            seed: 20200917,
        }
    }

    /// Pick by flag.
    pub fn from_flag(full: bool) -> Self {
        if full {
            Self::full()
        } else {
            Self::quick()
        }
    }

    /// Generate (and cache-key by seed) a named workload at profile scale.
    pub fn trace(&self, w: NamedWorkload) -> JobTrace {
        w.generate(self.trace_jobs, self.seed ^ w.name().len() as u64)
    }

    /// The PPO configuration at this scale.
    pub fn ppo(&self) -> PpoConfig {
        PpoConfig {
            train_pi_iters: self.ppo_iters,
            train_v_iters: self.ppo_iters,
            minibatch: self.minibatch,
            ..PpoConfig::default()
        }
    }

    /// A fresh agent for `metric` with architecture `kind`.
    pub fn agent(&self, kind: PolicyKind, metric: MetricKind, seed_offset: u64) -> Agent {
        Agent::new(AgentConfig {
            policy: kind,
            obs: ObsConfig {
                max_obsv: self.max_obsv,
                ..ObsConfig::default()
            },
            metric,
            ppo: self.ppo(),
            seed: self.seed ^ seed_offset,
        })
    }

    /// The training configuration over a given trace.
    pub fn train_cfg(&self, sim: SimConfig, filter: FilterMode) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            trajectories_per_epoch: self.trajectories,
            seq_len: self.train_seq,
            sim,
            filter,
            seed: self.seed,
            n_envs: 16,
            n_threads: 1,
        }
    }

    /// Train a fresh agent on a workload; returns the agent and its curve.
    pub fn train_agent(
        &self,
        workload: NamedWorkload,
        kind: PolicyKind,
        metric: MetricKind,
        sim: SimConfig,
        filter: FilterMode,
        seed_offset: u64,
    ) -> (Agent, TrainingCurve) {
        let trace = self.trace(workload);
        let mut agent = self.agent(kind, metric, seed_offset);
        let curve = train(&mut agent, &trace, &self.train_cfg(sim, filter));
        (agent, curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_sanely() {
        let q = Profile::quick();
        let f = Profile::full();
        assert!(q.trace_jobs < f.trace_jobs);
        assert!(q.epochs < f.epochs);
        assert_eq!(f.max_obsv, 128, "full profile matches the paper");
        assert_eq!(f.train_seq, 256);
        assert_eq!(f.eval_len, 1024);
        assert_eq!(f.eval_seqs, 10);
    }

    #[test]
    fn from_flag_selects() {
        assert_eq!(Profile::from_flag(false).name, "quick");
        assert_eq!(Profile::from_flag(true).name, "full");
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let p = Profile::quick();
        let a = p.trace(NamedWorkload::Lublin1);
        let b = p.trace(NamedWorkload::Lublin1);
        assert_eq!(a.jobs()[..50], b.jobs()[..50]);
    }
}
