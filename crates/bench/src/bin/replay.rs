//! `replay` — trace-scale streaming replay benchmark.
//!
//! Generates a deterministic synthetic SWF trace (Lublin model) on disk,
//! streams it back through the one-pass [`rlsched_replay::ReplayEngine`],
//! and reports per-policy decision throughput (sim-ticks/sec), decision
//! latency quantiles (p50/p99), and the peak queue depth that bounds the
//! replay's resident memory.
//!
//! ```text
//! replay                         # full run: 1,000,000 jobs, FCFS + SJF (+ agent at 1/20 scale)
//! replay --jobs 200000 --seed 7  # custom scale
//! replay --smoke                 # small trace, all three heads: heuristic + agent + served
//! replay --serve-load            # fire replayed decision points at live servers, one
//!                                # open-loop run per {JSON, binary} × {TCP, UDS} cell
//! replay --mmap                  # read the trace through the memory-mapped SWF reader
//! replay --smoke --metrics-dump  # also print both telemetry registries: the serve tier's
//!                                # (scraped over the wire via Request::Metrics) and the
//!                                # process-global replay registry, in exposition text format
//! replay --stretch 1.0           # raw calibrated arrivals (long runs back up under FCFS)
//! ```
//!
//! The calibrated Lublin model is slightly *overloaded* on long horizons
//! (offered load ≈ 1), so a raw multi-hundred-thousand-job FCFS replay
//! grows its queue linearly with trace length and the pass goes quadratic.
//! `--stretch F` multiplies every submit time by `F` when the trace is
//! written, keeping queue depth stationary so the bench measures engine
//! throughput, not backlog pathology. The default 1.5 puts offered load
//! ≈ 0.65 — comfortably under EASY-FCFS's effective capacity, which
//! fragmentation holds well below 1 (at 1.25 / offered ≈ 0.8, FCFS still
//! sits at its critical point and the queue random-walks upward over
//! million-job horizons). `--stretch 1.0` reproduces the raw model.
//!
//! Results are appended to `BENCH_replay.json` (in `$BENCH_OUT_DIR` or
//! the working directory) in the same `{"id": {"median_ns": …,
//! "iters_per_sample": …}}` shape the criterion shim emits, so the CI
//! `BENCH_*` scan picks them up unchanged: `median_ns` is the mean
//! nanoseconds per scheduling decision, `iters_per_sample` the decision
//! count it was averaged over.

use std::io::BufWriter;
use std::process::ExitCode;

use rlsched_replay::{
    collect_timed_requests, open_swf, open_swf_mmap, RemoteDecider, ReplayEngine, ReplayMetrics,
    ReplayPolicy, ReplayReport, SwfSource,
};
use rlsched_sched::HeuristicKind;
use rlsched_serve::{
    ListenAddr, LoadGen, LoadGenConfig, ServeConfig, Server, Transport, WireProtocol,
};
use rlsched_sim::{MetricKind, SimConfig};
use rlsched_workload::{LublinModel, LublinParams};
use rlscheduler::{Agent, AgentConfig, ObsConfig, PolicyKind};

struct Args {
    jobs: usize,
    seed: u64,
    stretch: f64,
    smoke: bool,
    serve_load: bool,
    backfill: bool,
    mmap: bool,
    metrics_dump: bool,
}

const USAGE: &str = "usage: replay [--jobs N] [--seed N] [--stretch F] [--smoke] [--serve-load] \
     [--no-backfill] [--mmap] [--metrics-dump]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 1_000_000,
        seed: 1,
        stretch: 1.5,
        smoke: false,
        serve_load: false,
        backfill: true,
        mmap: false,
        metrics_dump: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--jobs" => {
                args.jobs = next("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--seed" => {
                args.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--stretch" => {
                args.stretch = next("--stretch")?
                    .parse()
                    .map_err(|e| format!("--stretch: {e}"))?;
                if !(args.stretch.is_finite() && args.stretch > 0.0) {
                    return Err("--stretch must be a positive finite factor".into());
                }
            }
            "--smoke" => args.smoke = true,
            "--serve-load" => args.serve_load = true,
            "--no-backfill" => args.backfill = false,
            "--mmap" => args.mmap = true,
            "--metrics-dump" => args.metrics_dump = true,
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if args.smoke {
        args.jobs = args.jobs.min(2_000);
    }
    Ok(args)
}

/// Write the trace once, streaming straight to disk — the generator side
/// never materializes it either. `stretch` dilates submit times by a
/// constant factor (1.0 = the raw calibrated model) so long replays run
/// at stationary rather than critically-loaded utilization.
fn write_trace(jobs: usize, seed: u64, stretch: f64) -> std::io::Result<std::path::PathBuf> {
    let path = std::env::temp_dir().join(format!(
        "rlsched_replay_{jobs}_{seed}_x{}.swf",
        stretch.to_bits()
    ));
    let params = LublinParams::lublin1();
    let cluster = params.cluster_size;
    let model = LublinModel::new(params);
    let file = std::fs::File::create(&path)?;
    let mut header = rlsched_swf::SwfHeader::default();
    header
        .fields
        .insert("MaxProcs".to_string(), cluster.to_string());
    let jobs_iter = model.stream(jobs, seed).map(|mut j| {
        j.submit_time *= stretch;
        j
    });
    rlsched_swf::write_jobs(&header, cluster, jobs_iter, BufWriter::new(file))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(path)
}

fn run_source<R: std::io::BufRead, S: Transport>(
    src: SwfSource<R>,
    cfg: SimConfig,
    head: &str,
    policy: &mut ReplayPolicy<'_, S>,
) -> Result<ReplayReport, String> {
    let mut engine = ReplayEngine::new(src.jobs, src.max_procs, cfg).map_err(|e| e.to_string())?;
    engine.instrument(ReplayMetrics::register(rlsched_obs::global(), head));
    let report = engine.run(policy).map_err(|e| e.to_string())?;
    if let Some(e) = src.errors.take() {
        return Err(format!("trace cut short: {e}"));
    }
    Ok(report)
}

fn replay_arm<S: Transport>(
    path: &std::path::Path,
    cfg: SimConfig,
    mmap: bool,
    head: &str,
    policy: &mut ReplayPolicy<'_, S>,
) -> Result<ReplayReport, String> {
    if mmap {
        let src = open_swf_mmap(path).map_err(|e| e.to_string())?;
        run_source(src, cfg, head, policy)
    } else {
        let src = open_swf(path).map_err(|e| e.to_string())?;
        run_source(src, cfg, head, policy)
    }
}

fn print_report(label: &str, r: &ReplayReport) {
    println!(
        "{label:>10}: {:>9} jobs, {:>8} decisions, {:>10.0} ticks/s, \
         p50 {:>7} ns, p99 {:>8} ns, peak queue {:>6}, peak running {:>5}, \
         bsld {:.3}, util {:.3}",
        r.metrics.count(),
        r.decisions,
        r.decisions_per_sec(),
        r.p50_ns(),
        r.p99_ns(),
        r.peak_queue,
        r.peak_running,
        r.metrics.avg_bounded_slowdown(),
        r.metrics.utilization(),
    );
}

fn small_agent(seed: u64) -> Agent {
    Agent::new(AgentConfig {
        policy: PolicyKind::Kernel,
        obs: ObsConfig {
            max_obsv: 16,
            ..ObsConfig::default()
        },
        metric: MetricKind::BoundedSlowdown,
        ppo: Default::default(),
        seed,
    })
}

/// Append results in the criterion shim's report shape.
fn write_bench_json(entries: &[(String, f64, u64)]) {
    let out_dir = std::env::var_os("BENCH_OUT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let mut body = String::from("{\n");
    for (i, (id, median_ns, iters)) in entries.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "  \"{id}\": {{\"median_ns\": {median_ns:.1}, \"iters_per_sample\": {iters}}}"
        ));
    }
    body.push_str("\n}\n");
    let path = out_dir.join("BENCH_replay.json");
    match std::fs::write(&path, body) {
        Ok(()) => println!("[bench report saved to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run(args: Args) -> Result<(), String> {
    let cfg = if args.backfill {
        SimConfig::with_backfill()
    } else {
        SimConfig::no_backfill()
    };
    println!(
        "generating {} Lublin jobs (seed {}, arrival stretch ×{}) to a temporary SWF…",
        args.jobs, args.seed, args.stretch
    );
    let path = write_trace(args.jobs, args.seed, args.stretch).map_err(|e| e.to_string())?;
    let mut entries: Vec<(String, f64, u64)> = Vec::new();
    let mut record = |tag: &str, r: &ReplayReport| {
        let per_decision = if r.decisions == 0 {
            0.0
        } else {
            r.elapsed.as_nanos() as f64 / r.decisions as f64
        };
        entries.push((
            format!("replay/{tag}/ns_per_decision"),
            per_decision,
            r.decisions,
        ));
        entries.push((
            format!("replay/{tag}/decision_p99"),
            r.p99_ns() as f64,
            r.decisions,
        ));
    };

    if args.mmap {
        println!("[reading the trace through the memory-mapped SWF reader]");
    }

    // Heuristic arms: the full trace, one pass each.
    for kind in [HeuristicKind::Fcfs, HeuristicKind::Sjf] {
        let mut policy: ReplayPolicy = ReplayPolicy::Heuristic(kind);
        let r = replay_arm(&path, cfg, args.mmap, kind.name(), &mut policy)?;
        print_report(kind.name(), &r);
        record(&kind.name().to_lowercase(), &r);
    }

    // Agent arm: in-process RL decisions. Scoring cost grows with queue
    // depth, so the full-scale run uses a 1/20 slice to keep the bench
    // minutes-scale; smoke replays the whole (tiny) trace.
    let agent_jobs = if args.smoke {
        args.jobs
    } else {
        (args.jobs / 20).max(1_000)
    };
    let agent_path = if agent_jobs == args.jobs {
        path.clone()
    } else {
        write_trace(agent_jobs, args.seed, args.stretch).map_err(|e| e.to_string())?
    };
    let agent = small_agent(args.seed);
    let mut agent_policy: ReplayPolicy = ReplayPolicy::Agent(agent.stream_decider());
    let r = replay_arm(&agent_path, cfg, args.mmap, "RL-agent", &mut agent_policy)?;
    print_report("RL-agent", &r);
    record("agent", &r);

    // Served arm (smoke / serve-load): decisions cross the wire to a
    // live sharded server built from the same weights. Transport and
    // format follow `RLSCHED_WIRE` (TCP + JSON by default).
    if args.smoke || args.serve_load {
        let handle = Server::spawn(
            agent.scorer_snapshot(),
            *agent.encoder(),
            ServeConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        let client = handle.connect().map_err(|e| e.to_string())?;
        let mut policy = ReplayPolicy::Remote(
            RemoteDecider::new(client, 16).with_local_fallback(HeuristicKind::Sjf),
        );
        let r = replay_arm(&agent_path, cfg, args.mmap, "RL-served", &mut policy)?;
        print_report("RL-served", &r);
        record("served", &r);
        if args.metrics_dump {
            // Scrape the server's own registry over the wire before it
            // goes down — the shard/latency counters for the run above.
            let mut probe = handle.connect().map_err(|e| e.to_string())?;
            let scrape = probe.metrics().map_err(|e| e.to_string())?;
            println!("--- serve registry (Request::Metrics) ---");
            print!("{}", rlsched_obs::encode_text(&scrape));
        }
        handle.shutdown();

        if args.serve_load {
            // Open-loop load generation on the trace's own (compressed)
            // inter-arrival gaps — one run per {format} × {transport}
            // cell, each against a dedicated server, so the recorded
            // request quantiles compare wire stacks under identical
            // offered load.
            let src = open_swf(&agent_path).map_err(|e| e.to_string())?;
            let requests =
                collect_timed_requests(src.jobs, src.max_procs, cfg, HeuristicKind::Fcfs, 16)
                    .map_err(|e| e.to_string())?;
            type ListenerArm = (&'static str, fn() -> ListenAddr);
            let listeners: Vec<ListenerArm> = vec![
                ("tcp", || ListenAddr::Tcp("127.0.0.1:0".into())),
                #[cfg(unix)]
                ("uds", || ListenAddr::unix_temp("replay-loadgen")),
            ];
            for (transport, listen) in listeners {
                let handle = Server::spawn(
                    agent.scorer_snapshot(),
                    *agent.encoder(),
                    ServeConfig {
                        addr: listen(),
                        ..ServeConfig::default()
                    },
                )
                .map_err(|e| e.to_string())?;
                for proto in [WireProtocol::Json, WireProtocol::Binary] {
                    let gen = LoadGen::to(
                        handle.server_addr(),
                        LoadGenConfig {
                            workers: 4,
                            time_scale: 1e-9,
                            ..Default::default()
                        },
                    )
                    .with_protocol(proto);
                    let lr = gen.run(&requests).map_err(|e| e.to_string())?;
                    let cell = format!("{}_{transport}", proto.name());
                    println!(
                        "{:>18}: {} requests in {:?} ({} ok, {} sheds, {} fallbacks, \
                         {} errors), p50 {} ns, p99 {} ns",
                        format!("loadgen {cell}"),
                        lr.sent(),
                        lr.elapsed,
                        lr.ok,
                        lr.sheds,
                        lr.fallbacks,
                        lr.errors,
                        lr.hist.quantile_ns(0.5),
                        lr.hist.quantile_ns(0.99),
                    );
                    entries.push((
                        format!("replay/loadgen_{cell}/request_p50"),
                        lr.hist.quantile_ns(0.5) as f64,
                        lr.ok,
                    ));
                    entries.push((
                        format!("replay/loadgen_{cell}/request_p99"),
                        lr.hist.quantile_ns(0.99) as f64,
                        lr.ok,
                    ));
                }
                handle.shutdown();
            }
        }
    }

    write_bench_json(&entries);
    if args.metrics_dump {
        // The process-global registry: per-head replay ticks, decision
        // latency, throughput and peak-queue gauges.
        println!("--- replay registry ---");
        print!(
            "{}",
            rlsched_obs::encode_text(&rlsched_obs::global().snapshot())
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let code = match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    };
    // Spans buffer in-process; emit them on the way out (no-op unless
    // RLSCHED_TRACE is set).
    let _ = rlsched_obs::trace::flush();
    code
}
